"""Dataset collection: run the measurement system, produce a trace.

This is the vectorised equivalent of fourteen days of testbed operation
(Section 4.1): the probing subsystem runs first (it is what reactive
routing sees), then every host's measurement probes are scheduled,
routed per method, and evaluated jointly against the substrate.

Round-trip mode (the RONwide dataset) sends a response packet back over
the reverse of each forward route; a probe is lost if either direction
loses it, and its RTT is the sum of the one-way latencies — matching
Table 7's round-trip accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.methods import METHODS, Method
from repro.core.reactive import RoutingTables, build_routing_tables, run_probing
from repro.core.router import resolve_routes
from repro.netsim.network import Network, PairOutcome
from repro.netsim.rng import RngFactory
from repro.netsim.topology import PathTable
from repro.trace.records import Trace, TraceMeta

from .datasets import DatasetSpec
from .probes import generate_schedule

__all__ = ["collect", "CollectionResult"]

#: turnaround delay at the responder for round-trip probes.
RTT_TURNAROUND_S = 2e-4


@dataclass(frozen=True, eq=False)
class CollectionResult:
    """A collected trace plus the run's supporting state (for analysis
    that needs ground truth, e.g. ablation benchmarks)."""

    trace: Trace
    network: Network
    tables: RoutingTables | None

    def __repr__(self) -> str:
        meta = self.trace.meta
        return (
            f"CollectionResult(dataset={meta.dataset!r}, seed={meta.seed}, "
            f"mode={meta.mode!r}, probes={len(self.trace):,})"
        )


def _reverse_pids(
    paths: PathTable, src: np.ndarray, dst: np.ndarray, relay: np.ndarray
) -> np.ndarray:
    """Path ids of the reverse route (same relay, opposite direction)."""
    direct = paths.direct_pids(dst, src)
    via = paths.relay_pids(dst, np.maximum(relay, 0), src)
    return np.where(relay < 0, direct, via)


def _eval_oneway(
    net: Network,
    m: Method,
    pid1: np.ndarray,
    pid2: np.ndarray | None,
    times: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(lost1, lat1, lost2, lat2) for one-way probes of one method."""
    if pid2 is None:
        out = net.sample_packets(pid1, times)
        n = len(times)
        return out.lost, out.latency, np.zeros(n, bool), np.full(n, np.nan)
    pair: PairOutcome = net.sample_pairs(pid1, pid2, times, gap=m.gap_s)
    return pair.lost1, pair.latency1, pair.lost2, pair.latency2


def _eval_rtt(
    net: Network,
    m: Method,
    src: np.ndarray,
    dst: np.ndarray,
    relay1: np.ndarray,
    relay2: np.ndarray | None,
    pid1: np.ndarray,
    pid2: np.ndarray | None,
    times: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Round-trip evaluation: forward leg then response on the reverse route.

    The response is only sent if the forward packet arrived; we evaluate
    both directions vectorised and combine (a response for a lost
    forward packet never existed, so 'lost either way' is correct).
    """
    paths = net.paths
    rpid1 = _reverse_pids(paths, src, dst, relay1)
    if pid2 is None:
        fwd = net.sample_packets(pid1, times)
        back_t = times + np.nan_to_num(fwd.latency, nan=0.0) + RTT_TURNAROUND_S
        back = net.sample_packets(rpid1, back_t)
        lost = fwd.lost | back.lost
        rtt = fwd.latency + back.latency + RTT_TURNAROUND_S
        n = len(times)
        return lost, rtt, np.zeros(n, bool), np.full(n, np.nan)
    assert relay2 is not None
    rpid2 = _reverse_pids(paths, src, dst, relay2)
    fwd = net.sample_pairs(pid1, pid2, times, gap=m.gap_s)
    back_t = times + np.nan_to_num(fwd.latency1, nan=0.0) + RTT_TURNAROUND_S
    back = net.sample_pairs(rpid1, rpid2, back_t, gap=m.gap_s)
    lost1 = fwd.lost1 | back.lost1
    lost2 = fwd.lost2 | back.lost2
    rtt1 = fwd.latency1 + back.latency1 + RTT_TURNAROUND_S
    rtt2 = fwd.latency2 + back.latency2 + RTT_TURNAROUND_S
    return lost1, rtt1, lost2, rtt2


def collect(
    spec: DatasetSpec,
    duration_s: float,
    seed: int = 0,
    include_events: bool = True,
    network: Network | None = None,
) -> CollectionResult:
    """Collect a dataset: the full pipeline, time-compressed to
    ``duration_s``.

    Pass a prebuilt ``network`` to reuse substrate state across
    collections (ablations that compare methods on identical weather).
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    rngs = RngFactory(seed)
    cfg = spec.network_config(duration_s, include_events=include_events)
    hosts = spec.hosts()
    if network is None:
        network = Network.build(hosts, cfg, duration_s, seed=seed)
    methods = [METHODS.lookup(name) for name in spec.probe_methods]

    # 1. the probing subsystem + routing tables (if any method needs them)
    tables: RoutingTables | None = None
    if any(m.needs_probing for m in methods):
        series = run_probing(network, cfg.probing, rngs)
        tables = build_routing_tables(series, cfg.probing)

    # 2. measurement probe schedule
    sched_rng = rngs.stream("schedule")
    sched = generate_schedule(
        len(hosts), len(methods), duration_s, sched_rng
    )

    # 3. route + evaluate per method
    route_rng = rngs.stream("routes")
    n = len(sched)
    relay1 = np.full(n, -1, dtype=np.int16)
    relay2 = np.full(n, -1, dtype=np.int16)
    lost1 = np.zeros(n, dtype=bool)
    lost2 = np.zeros(n, dtype=bool)
    lat1 = np.full(n, np.nan, dtype=np.float32)
    lat2 = np.full(n, np.nan, dtype=np.float32)

    for mid, m in enumerate(methods):
        mask = sched.method_id == mid
        if not mask.any():
            continue
        src = sched.src[mask].astype(np.int64)
        dst = sched.dst[mask].astype(np.int64)
        times = sched.t_send[mask]
        routes = resolve_routes(m, src, dst, times, network.paths, tables, route_rng)
        if spec.mode == "oneway":
            l1, la1, l2, la2 = _eval_oneway(
                network, m, routes.pid1, routes.pid2, times
            )
        else:
            l1, la1, l2, la2 = _eval_rtt(
                network,
                m,
                src,
                dst,
                routes.relay1,
                routes.relay2,
                routes.pid1,
                routes.pid2,
                times,
            )
        relay1[mask] = routes.relay1
        if routes.relay2 is not None:
            relay2[mask] = routes.relay2
        lost1[mask] = l1
        lost2[mask] = l2
        lat1[mask] = np.where(l1, np.nan, la1)
        lat2[mask] = np.where(l2, np.nan, la2)

    # 4. host-failure exclusions (the collector-side ground truth; the
    # paper's trace-side detection lives in repro.trace.filters)
    send_down = network.state.host_down_at(sched.src, sched.t_send)
    recv_down = network.state.host_down_at(sched.dst, sched.t_send)
    excluded = send_down | recv_down
    # probes to a dead receiver are also losses on the wire
    pair_mask = np.array([m.is_pair for m in methods])[sched.method_id]
    lost1 |= recv_down
    lost2 |= recv_down & pair_mask

    meta = TraceMeta(
        dataset=spec.name,
        mode=spec.mode,
        horizon_s=duration_s,
        seed=seed,
        host_names=tuple(h.name for h in hosts),
        method_names=tuple(m.name for m in methods),
    )
    trace = Trace(
        meta=meta,
        probe_id=sched.probe_id,
        method_id=sched.method_id,
        src=sched.src,
        dst=sched.dst,
        t_send=sched.t_send,
        relay1=relay1,
        relay2=relay2,
        lost1=lost1,
        lost2=lost2,
        latency1=lat1,
        latency2=lat2,
        excluded=excluded,
    )
    return CollectionResult(trace=trace, network=network, tables=tables)
