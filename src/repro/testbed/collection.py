"""Dataset collection: run the measurement system, produce a trace.

This is the vectorised equivalent of fourteen days of testbed operation
(Section 4.1): the probing subsystem runs first (it is what reactive
routing sees), then every host's measurement probes are scheduled,
routed per method, and evaluated jointly against the substrate.

Round-trip mode (the RONwide dataset) sends a response packet back over
the reverse of each forward route; a probe is lost if either direction
loses it, and its RTT is the sum of the one-way latencies — matching
Table 7's round-trip accounting.

Execution model
---------------
The run is split into independent *source blocks*: every host's probes
form one contiguous schedule slice, and each block draws its routing
and packet-fate randomness from its own named substreams
(``routes/<host>`` and ``traffic/<host>`` of the run's
:class:`~repro.netsim.rng.RngFactory`; the probing subsystem that runs
first uses ``probing/<host>`` the same way).  A block's outcomes
therefore depend only on (spec, seed, host) — never on which other
blocks ran in the same process — which is what lets
:class:`repro.engine.ShardedCollector` farm blocks out across cores
(and :class:`repro.engine.ShardedProbe` do the same for the probe
grid) and still produce the bitwise-identical trace.  The canonical row order of a finished trace is ascending
``probe_id`` (applied here and by :meth:`Trace.concatenate`), so
sequential and sharded runs serialise identically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.core.methods import METHODS, Method
from repro.core.reactive import RoutingTables, build_routing_tables, run_probing
from repro.core.router import resolve_routes
from repro.netsim.network import Network, PairOutcome
from repro.netsim.rng import RngFactory
from repro.netsim.topology import PathTable
from repro.trace.records import Trace, TraceMeta, id_dtype

from .datasets import DatasetSpec
from .probes import ProbeSchedule, generate_schedule

__all__ = [
    "collect",
    "CollectionResult",
    "CollectionPlan",
    "prepare_collection",
    "prepare_collection_base",
    "collect_rows",
]

#: turnaround delay at the responder for round-trip probes.
RTT_TURNAROUND_S = 2e-4


@dataclass(frozen=True, eq=False)
class CollectionResult:
    """A collected trace plus the run's supporting state (for analysis
    that needs ground truth, e.g. ablation benchmarks).

    ``spill_dir`` is set by spilled engine runs: the run's own spill
    subdirectory, holding the ``shard-*.npz`` files and the merged
    memory-mapped store — what streaming analysis
    (:class:`repro.analysis.StreamingAnalyzer`) consumes post-hoc.
    """

    trace: Trace
    network: Network
    tables: RoutingTables | None
    spill_dir: Path | None = None

    def __repr__(self) -> str:
        meta = self.trace.meta
        return (
            f"CollectionResult(dataset={meta.dataset!r}, seed={meta.seed}, "
            f"mode={meta.mode!r}, probes={len(self.trace):,})"
        )


@dataclass(frozen=True, eq=False)
class CollectionPlan:
    """Everything the source blocks of one run share, read-only.

    Built once by :func:`prepare_collection` (substrate, probing,
    routing tables, schedule) and then handed to every evaluator —
    the sequential loop in :func:`collect` or the shard workers of
    :class:`repro.engine.ShardedCollector`.
    """

    meta: TraceMeta
    seed: int
    network: Network
    methods: tuple[Method, ...]
    tables: RoutingTables | None
    sched: ProbeSchedule
    #: host ``h`` owns schedule rows ``[bounds[h], bounds[h+1])``.
    bounds: np.ndarray
    #: whether the run's substrate includes the scheduled major events
    #: (part of run identity — e.g. the engine's spill-directory key).
    include_events: bool = True

    @property
    def n_hosts(self) -> int:
        return len(self.meta.host_names)

    @property
    def host_dtype(self) -> np.dtype:
        """Capacity-chosen dtype of the trace's host/relay id columns."""
        return id_dtype(self.n_hosts)


def _reverse_pids(
    paths: PathTable, src: np.ndarray, dst: np.ndarray, relay: np.ndarray
) -> np.ndarray:
    """Path ids of the reverse route (same relay, opposite direction).

    Relay pids are only looked up where a relay was actually used:
    candidate-set tables are strict about membership, and the sets are
    symmetric by construction, so every forward relay is also a valid
    reverse-direction candidate.
    """
    pids = np.asarray(paths.direct_pids(dst, src), dtype=np.int64).copy()
    via_rows = relay >= 0
    if via_rows.any():
        pids[via_rows] = paths.relay_pids(
            dst[via_rows], relay[via_rows].astype(np.int64), src[via_rows]
        )
    return pids


def _eval_oneway(
    net: Network,
    m: Method,
    pid1: np.ndarray,
    pid2: np.ndarray | None,
    times: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(lost1, lat1, lost2, lat2) for one-way probes of one method."""
    if pid2 is None:
        out = net.sample_packets(pid1, times, rng=rng)
        n = len(times)
        return out.lost, out.latency, np.zeros(n, bool), np.full(n, np.nan)
    pair: PairOutcome = net.sample_pairs(pid1, pid2, times, gap=m.gap_s, rng=rng)
    return pair.lost1, pair.latency1, pair.lost2, pair.latency2


def _eval_rtt(
    net: Network,
    m: Method,
    src: np.ndarray,
    dst: np.ndarray,
    relay1: np.ndarray,
    relay2: np.ndarray | None,
    pid1: np.ndarray,
    pid2: np.ndarray | None,
    times: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Round-trip evaluation: forward leg then response on the reverse route.

    The response is only sent if the forward packet arrived; we evaluate
    both directions vectorised and combine (a response for a lost
    forward packet never existed, so 'lost either way' is correct).
    """
    paths = net.paths
    rpid1 = _reverse_pids(paths, src, dst, relay1)
    if pid2 is None:
        fwd = net.sample_packets(pid1, times, rng=rng)
        back_t = times + np.nan_to_num(fwd.latency, nan=0.0) + RTT_TURNAROUND_S
        back = net.sample_packets(rpid1, back_t, rng=rng)
        lost = fwd.lost | back.lost
        rtt = fwd.latency + back.latency + RTT_TURNAROUND_S
        n = len(times)
        return lost, rtt, np.zeros(n, bool), np.full(n, np.nan)
    assert relay2 is not None
    rpid2 = _reverse_pids(paths, src, dst, relay2)
    fwd = net.sample_pairs(pid1, pid2, times, gap=m.gap_s, rng=rng)
    back_t = times + np.nan_to_num(fwd.latency1, nan=0.0) + RTT_TURNAROUND_S
    back = net.sample_pairs(rpid1, rpid2, back_t, gap=m.gap_s, rng=rng)
    lost1 = fwd.lost1 | back.lost1
    lost2 = fwd.lost2 | back.lost2
    rtt1 = fwd.latency1 + back.latency1 + RTT_TURNAROUND_S
    rtt2 = fwd.latency2 + back.latency2 + RTT_TURNAROUND_S
    return lost1, rtt1, lost2, rtt2


def prepare_collection_base(
    spec: DatasetSpec,
    duration_s: float,
    seed: int = 0,
    include_events: bool = True,
    network: Network | None = None,
    substrate: str = "eager",
    max_cached_segments: int | None = None,
) -> CollectionPlan:
    """The non-probing shared stages: substrate, schedule, run meta.

    Everything :func:`prepare_collection` builds *except* the probing
    subsystem and routing tables — the returned plan has
    ``tables=None``.  The pipelined engine
    (:mod:`repro.engine.pipeline`) starts from this plan and overlaps
    table construction with collection instead of finishing it here.
    Every RNG substream is named (``schedule``, ``probing/<host>``,
    ...), so building the schedule without — or before — probing
    changes no draw: composing this with the probe/tables stages in any
    order yields the bitwise-identical plan.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    rngs = RngFactory(seed)
    cfg = spec.network_config(duration_s, include_events=include_events)
    hosts = spec.hosts()
    if network is None:
        network = Network.build(
            hosts,
            cfg,
            duration_s,
            seed=seed,
            substrate=substrate,
            max_cached_segments=max_cached_segments,
            relay_policy=spec.relay_policy,
        )
    else:
        built = network.relay_set.spec if network.relay_set is not None else None
        if built != spec.relay_policy:
            raise ValueError(
                f"prebuilt network was built with relay policy {built!r}, "
                f"but dataset {spec.name!r} specifies {spec.relay_policy!r}"
            )
    methods = tuple(METHODS.lookup(name) for name in spec.probe_methods)

    sched_rng = rngs.stream("schedule")
    sched = generate_schedule(len(hosts), len(methods), duration_s, sched_rng)

    meta = TraceMeta(
        dataset=spec.name,
        mode=spec.mode,
        horizon_s=duration_s,
        seed=seed,
        host_names=tuple(h.name for h in hosts),
        method_names=tuple(m.name for m in methods),
    )
    return CollectionPlan(
        meta=meta,
        seed=seed,
        network=network,
        methods=methods,
        tables=None,
        sched=sched,
        bounds=sched.source_bounds(len(hosts)),
        include_events=include_events,
    )


def prepare_collection(
    spec: DatasetSpec,
    duration_s: float,
    seed: int = 0,
    include_events: bool = True,
    network: Network | None = None,
    substrate: str = "eager",
    max_cached_segments: int | None = None,
    probing=None,
) -> CollectionPlan:
    """Run the shared stages of a collection, exactly once per run.

    Substrate build (unless ``network`` is passed in), the probing
    subsystem, routing tables and the measurement schedule all happen
    exactly once per run, whatever the shard layout.  ``substrate`` /
    ``max_cached_segments`` configure the build (see
    :meth:`Network.build`) and are ignored for a prebuilt network.
    ``probing`` optionally replaces the serial :func:`run_probing` with
    a sharded runner — anything with a ``run(network, params, rngs) ->
    ProbeSeries`` method, in practice :class:`repro.engine.ShardedProbe`;
    the output is bitwise identical either way, so the resulting
    routing tables can be shared read-only by every collection shard.
    """
    plan = prepare_collection_base(
        spec,
        duration_s,
        seed=seed,
        include_events=include_events,
        network=network,
        substrate=substrate,
        max_cached_segments=max_cached_segments,
    )

    # the probing subsystem + routing tables (if any method needs them)
    if any(m.needs_probing for m in plan.methods):
        cfg = spec.network_config(duration_s, include_events=include_events)
        rngs = RngFactory(seed)
        tables: RoutingTables | None = None
        with telemetry.span(
            "probe", cat="stage", sharded=probing is not None, hosts=plan.n_hosts
        ):
            if probing is None:
                series = run_probing(plan.network, cfg.probing, rngs)
            else:
                series = probing.run(plan.network, cfg.probing, rngs)
        with telemetry.span("tables", cat="stage", hosts=plan.n_hosts):
            tables = build_routing_tables(
                series, cfg.probing, relay_set=plan.network.paths.relay_set
            )
        plan = replace(plan, tables=tables)
    return plan


def collect_rows(plan: CollectionPlan, host_lo: int, host_hi: int) -> Trace:
    """Route and evaluate the source blocks ``[host_lo, host_hi)``.

    Returns a partial :class:`Trace` (full run meta, schedule row order)
    covering exactly those hosts' probes.  Each block consumes its own
    ``routes/<host>`` and ``traffic/<host>`` substreams, so the result
    is identical whether blocks run in one process, across threads, or
    in separate worker processes.
    """
    with telemetry.span("shard-collect", cat="shard", host_lo=host_lo, host_hi=host_hi):
        trace = _collect_rows(plan, host_lo, host_hi)
    rec = telemetry.get_recorder()
    if rec.enabled:
        rec.counter_add("collect.rows", len(trace))
    return trace


def _collect_rows(plan: CollectionPlan, host_lo: int, host_hi: int) -> Trace:
    if not 0 <= host_lo < host_hi <= plan.n_hosts:
        raise ValueError(f"invalid host range [{host_lo}, {host_hi})")
    network, sched, mode = plan.network, plan.sched, plan.meta.mode
    rngs = RngFactory(plan.seed)
    hid = plan.host_dtype
    lo, hi = int(plan.bounds[host_lo]), int(plan.bounds[host_hi])
    n = hi - lo
    relay1 = np.full(n, -1, dtype=hid)
    relay2 = np.full(n, -1, dtype=hid)
    lost1 = np.zeros(n, dtype=bool)
    lost2 = np.zeros(n, dtype=bool)
    lat1 = np.full(n, np.nan, dtype=np.float32)
    lat2 = np.full(n, np.nan, dtype=np.float32)

    # 3. route + evaluate, one source block at a time
    for h in range(host_lo, host_hi):
        blo, bhi = int(plan.bounds[h]), int(plan.bounds[h + 1])
        if blo == bhi:
            continue
        route_rng = rngs.stream("routes", str(h))
        traffic_rng = rngs.stream("traffic", str(h))
        block_methods = sched.method_id[blo:bhi]
        for mid, m in enumerate(plan.methods):
            mask = block_methods == mid
            if not mask.any():
                continue
            src = sched.src[blo:bhi][mask]
            dst = sched.dst[blo:bhi][mask]
            times = sched.t_send[blo:bhi][mask]
            routes = resolve_routes(
                m, src, dst, times, network.paths, plan.tables, route_rng
            )
            if mode == "oneway":
                l1, la1, l2, la2 = _eval_oneway(
                    network, m, routes.pid1, routes.pid2, times, traffic_rng
                )
            else:
                l1, la1, l2, la2 = _eval_rtt(
                    network,
                    m,
                    src,
                    dst,
                    routes.relay1,
                    routes.relay2,
                    routes.pid1,
                    routes.pid2,
                    times,
                    traffic_rng,
                )
            sel = np.flatnonzero(mask) + (blo - lo)
            relay1[sel] = routes.relay1
            if routes.relay2 is not None:
                relay2[sel] = routes.relay2
            lost1[sel] = l1
            lost2[sel] = l2
            lat1[sel] = np.where(l1, np.nan, la1)
            lat2[sel] = np.where(l2, np.nan, la2)

    # 4. host-failure exclusions (the collector-side ground truth; the
    # paper's trace-side detection lives in repro.trace.filters)
    src_rows = sched.src[lo:hi]
    dst_rows = sched.dst[lo:hi]
    t_rows = sched.t_send[lo:hi]
    send_down = network.state.host_down_at(src_rows, t_rows)
    recv_down = network.state.host_down_at(dst_rows, t_rows)
    excluded = send_down | recv_down
    # probes to a dead receiver are also losses on the wire
    pair_mask = np.array([m.is_pair for m in plan.methods])[sched.method_id[lo:hi]]
    lost1 |= recv_down
    lost2 |= recv_down & pair_mask

    return Trace(
        meta=plan.meta,
        probe_id=sched.probe_id[lo:hi],
        method_id=sched.method_id[lo:hi],
        src=src_rows.astype(hid),
        dst=dst_rows.astype(hid),
        t_send=t_rows,
        relay1=relay1,
        relay2=relay2,
        lost1=lost1,
        lost2=lost2,
        latency1=lat1,
        latency2=lat2,
        excluded=excluded,
    )


def collect(
    spec: DatasetSpec,
    duration_s: float,
    seed: int = 0,
    include_events: bool = True,
    network: Network | None = None,
) -> CollectionResult:
    """Collect a dataset: the full pipeline, time-compressed to
    ``duration_s``.

    Pass a prebuilt ``network`` to reuse substrate state across
    collections (ablations that compare methods on identical weather).
    """
    plan = prepare_collection(
        spec, duration_s, seed=seed, include_events=include_events, network=network
    )
    # concatenate of one part applies the canonical probe_id ordering,
    # making this literally the one-shard case of the engine
    trace = Trace.concatenate([collect_rows(plan, 0, plan.n_hosts)])
    return CollectionResult(trace=trace, network=plan.network, tables=plan.tables)
