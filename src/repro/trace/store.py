"""Trace persistence: compact ``.npz`` with JSON metadata.

Traces are the interface between collection and analysis, exactly as
the central monitoring machine's aggregated logs were in the paper
(Section 4.1); persisting them lets analyses re-run without re-running
the (much more expensive) collection.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .records import Trace, TraceMeta

__all__ = ["save_trace", "load_trace"]


def save_trace(trace: Trace, path: str | Path) -> Path:
    """Write a trace to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = {
        "dataset": trace.meta.dataset,
        "mode": trace.meta.mode,
        "horizon_s": trace.meta.horizon_s,
        "seed": trace.meta.seed,
        "host_names": list(trace.meta.host_names),
        "method_names": list(trace.meta.method_names),
        "extra": trace.extra,
    }
    arrays = {name: getattr(trace, name) for name in Trace.ARRAY_FIELDS}
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path, __meta__=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8), **arrays
    )
    return path


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as data:
        meta_raw = json.loads(bytes(data["__meta__"]).decode())
        arrays = {name: data[name] for name in Trace.ARRAY_FIELDS}
    meta = TraceMeta(
        dataset=meta_raw["dataset"],
        mode=meta_raw["mode"],
        horizon_s=float(meta_raw["horizon_s"]),
        seed=int(meta_raw["seed"]),
        host_names=tuple(meta_raw["host_names"]),
        method_names=tuple(meta_raw["method_names"]),
    )
    return Trace(meta=meta, extra=meta_raw.get("extra", {}), **arrays)
