"""Trace persistence: compact ``.npz`` with JSON metadata.

Traces are the interface between collection and analysis, exactly as
the central monitoring machine's aggregated logs were in the paper
(Section 4.1); persisting them lets analyses re-run without re-running
the (much more expensive) collection.

Spilled runs go through the same files: the engine writes each shard's
partial trace with :func:`save_trace` as it completes, and
:func:`concatenate_stored` merges the shards into canonical probe-id
order one shard at a time, scattering rows into memory-mapped output
arrays — so a merged trace larger than RAM never has to be resident
all at once (only the 8-byte probe ids are, to compute the sort).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .records import Trace, TraceMeta, debug_checks_enabled, require_same_run

__all__ = [
    "save_trace",
    "load_trace",
    "concatenate_stored",
    "open_stored",
    "StreamingMerge",
]


def _npz_path(path: str | Path) -> Path:
    """``path`` with ``.npz`` appended unless already present.

    Appends to the *name* rather than replacing the pathlib suffix, so
    dotted run names (``run.v2``, ``exp.2026.07``) survive untouched
    instead of having their last dot segment treated as an extension.
    """
    path = Path(path)
    if path.name.endswith(".npz"):
        return path
    return path.with_name(path.name + ".npz")


def _meta_to_dict(trace: Trace) -> dict:
    return {
        "dataset": trace.meta.dataset,
        "mode": trace.meta.mode,
        "horizon_s": trace.meta.horizon_s,
        "seed": trace.meta.seed,
        "host_names": list(trace.meta.host_names),
        "method_names": list(trace.meta.method_names),
        "extra": trace.extra,
    }


def _meta_from_dict(raw: dict) -> TraceMeta:
    return TraceMeta(
        dataset=raw["dataset"],
        mode=raw["mode"],
        horizon_s=float(raw["horizon_s"]),
        seed=int(raw["seed"]),
        host_names=tuple(raw["host_names"]),
        method_names=tuple(raw["method_names"]),
    )


def save_trace(trace: Trace, path: str | Path) -> Path:
    """Write a trace to ``path`` (``.npz`` appended if missing)."""
    path = _npz_path(path)
    meta = _meta_to_dict(trace)
    arrays = {name: getattr(trace, name) for name in Trace.ARRAY_FIELDS}
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path, __meta__=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8), **arrays
    )
    return path


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    if not path.exists() and _npz_path(path).exists():
        path = _npz_path(path)
    with np.load(path) as data:
        meta_raw = json.loads(bytes(data["__meta__"]).decode())
        arrays = {name: data[name] for name in Trace.ARRAY_FIELDS}
    return Trace(meta=_meta_from_dict(meta_raw), extra=meta_raw.get("extra", {}), **arrays)


def concatenate_stored(paths, out_dir: str | Path | None = None) -> Trace:
    """Merge spilled shard files into one canonically-ordered trace.

    The streaming counterpart of :meth:`Trace.concatenate`: ``paths``
    name partial traces written by :func:`save_trace` (in the same part
    order the in-RAM merge would receive), and the result is bitwise
    identical — same global stable sort by ``probe_id``, same dtypes —
    but built with bounded residency:

    * pass 1 reads only each shard's ``probe_id`` column and computes
      every row's destination in the merged order (O(rows) ints, not
      O(rows) full records);
    * pass 2 re-opens one shard at a time and scatters its columns into
      memory-mapped ``.npy`` output arrays under ``out_dir`` (default:
      ``<first shard's directory>/merged/``).

    The returned trace's arrays are read-only memory maps over those
    files, so downstream analysis pages data in on demand; callers that
    want a private in-RAM copy can ``np.asarray`` the columns.
    """
    paths = [_npz_path(p) for p in paths]
    if not paths:
        raise ValueError("cannot concatenate zero traces")
    out_dir = Path(out_dir) if out_dir is not None else paths[0].parent / "merged"
    out_dir.mkdir(parents=True, exist_ok=True)

    # pass 1: metas, dtypes and the global probe-id order
    metas: list[TraceMeta] = []
    dtypes: dict[str, np.dtype] = {}
    pids: list[np.ndarray] = []
    for i, p in enumerate(paths):
        with np.load(p) as data:
            metas.append(_meta_from_dict(json.loads(bytes(data["__meta__"]).decode())))
            pids.append(data["probe_id"])
            if i == 0:
                dtypes = {name: data[name].dtype for name in Trace.ARRAY_FIELDS}
    require_same_run(metas)
    counts = [len(p) for p in pids]
    offsets = np.concatenate([[0], np.cumsum(counts)])
    total = int(offsets[-1])
    order = np.argsort(np.concatenate(pids), kind="stable")
    del pids
    dest = np.empty(total, dtype=np.int64)
    dest[order] = np.arange(total)
    del order

    # the run meta rides along, so the merged store is self-describing
    # (shard files may be deleted once merged; open_stored re-opens it)
    meta_dict = {
        "dataset": metas[0].dataset,
        "mode": metas[0].mode,
        "horizon_s": metas[0].horizon_s,
        "seed": metas[0].seed,
        "host_names": list(metas[0].host_names),
        "method_names": list(metas[0].method_names),
        "extra": {},
    }
    (out_dir / "__meta__.json").write_text(json.dumps(meta_dict))

    # pass 2: one shard at a time into memory-mapped outputs
    outs = {
        name: np.lib.format.open_memmap(
            out_dir / f"{name}.npy", mode="w+", dtype=dtypes[name], shape=(total,)
        )
        for name in Trace.ARRAY_FIELDS
    }
    for i, p in enumerate(paths):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        rows = dest[lo:hi]
        with np.load(p) as data:
            for name in Trace.ARRAY_FIELDS:
                outs[name][rows] = data[name]
    for arr in outs.values():
        arr.flush()
    del outs

    arrays = {
        name: np.load(out_dir / f"{name}.npy", mmap_mode="r")
        for name in Trace.ARRAY_FIELDS
    }
    merged = Trace(meta=metas[0], **arrays)
    if debug_checks_enabled():
        merged.assert_canonical_order("concatenate_stored")
    return merged


class StreamingMerge:
    """Incremental shard merge: scatter parts as they complete.

    The pipelined engine's counterpart of :func:`concatenate_stored`
    (and, for in-RAM parts, of :meth:`Trace.concatenate`): instead of
    waiting for every shard before the two merge passes begin, the
    caller precomputes the global probe-id order — the collection plan
    already holds every row's ``probe_id`` in schedule order, which for
    contiguous ascending source ranges *is* part-concatenation order —
    and each part is scattered into the output the moment it finishes,
    while other shards are still running.  The finalized trace is
    bitwise identical to the barrier merge: same stable sort, same
    dtypes, and (when spilling) the same ``.npy`` + ``__meta__.json``
    layout :func:`open_stored` re-opens.

    Parameters
    ----------
    meta:
        the run's :class:`TraceMeta` (every part must be from this run).
    pids:
        all parts' ``probe_id`` values concatenated in part order
        (uint64; the global stable argsort of this array defines the
        canonical output order).
    offsets:
        ``n_parts + 1`` row offsets: part ``i`` covers rows
        ``[offsets[i], offsets[i+1])`` of ``pids``.
    out_dir:
        directory for memory-mapped output columns (the spilled-merge
        layout), or ``None`` to merge into RAM arrays.
    """

    def __init__(self, meta: TraceMeta, pids, offsets, out_dir: str | Path | None = None):
        self.meta = meta
        pids = np.asarray(pids)
        self._offsets = np.asarray(offsets, dtype=np.int64)
        if self._offsets.ndim != 1 or len(self._offsets) < 2:
            raise ValueError("offsets must hold n_parts + 1 row bounds")
        total = int(self._offsets[-1])
        if int(self._offsets[0]) != 0 or len(pids) != total:
            raise ValueError(
                f"offsets [{self._offsets[0]}..{total}] do not cover the "
                f"{len(pids)} probe ids"
            )
        order = np.argsort(pids, kind="stable")
        self._dest = np.empty(total, dtype=np.int64)
        self._dest[order] = np.arange(total)
        self._total = total
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self._outs: dict[str, np.ndarray] | None = None
        self._seen = [False] * (len(self._offsets) - 1)
        if self.out_dir is not None:
            self.out_dir.mkdir(parents=True, exist_ok=True)
            meta_dict = {
                "dataset": meta.dataset,
                "mode": meta.mode,
                "horizon_s": meta.horizon_s,
                "seed": meta.seed,
                "host_names": list(meta.host_names),
                "method_names": list(meta.method_names),
                "extra": {},
            }
            (self.out_dir / "__meta__.json").write_text(json.dumps(meta_dict))

    def _allocate(self, dtypes: dict[str, np.dtype]) -> dict[str, np.ndarray]:
        if self.out_dir is None:
            return {
                name: np.empty(self._total, dtype=dtypes[name])
                for name in Trace.ARRAY_FIELDS
            }
        return {
            name: np.lib.format.open_memmap(
                self.out_dir / f"{name}.npy",
                mode="w+",
                dtype=dtypes[name],
                shape=(self._total,),
            )
            for name in Trace.ARRAY_FIELDS
        }

    def add(self, index: int, part: Trace | str | Path) -> None:
        """Scatter part ``index`` (a :class:`Trace`, or a path written by
        :func:`save_trace`) into its destination rows.  Parts may arrive
        in any order; each index exactly once."""
        if self._seen[index]:
            raise ValueError(f"part {index} already merged")
        if isinstance(part, Trace):
            require_same_run([self.meta, part.meta])
            arrays = {name: getattr(part, name) for name in Trace.ARRAY_FIELDS}
        else:
            with np.load(_npz_path(part)) as data:
                require_same_run(
                    [self.meta, _meta_from_dict(json.loads(bytes(data["__meta__"]).decode()))]
                )
                arrays = {name: data[name] for name in Trace.ARRAY_FIELDS}
        lo, hi = int(self._offsets[index]), int(self._offsets[index + 1])
        if len(arrays["probe_id"]) != hi - lo:
            raise ValueError(
                f"part {index} has {len(arrays['probe_id'])} rows, expected {hi - lo}"
            )
        if self._outs is None:
            self._outs = self._allocate({name: a.dtype for name, a in arrays.items()})
        rows = self._dest[lo:hi]
        for name in Trace.ARRAY_FIELDS:
            self._outs[name][rows] = arrays[name]
        self._seen[index] = True

    def finalize(self) -> Trace:
        """All parts in: flush (spilled) and return the merged trace.

        Spilled outputs come back re-opened as read-only memory maps —
        the same bounded-residency contract as :func:`concatenate_stored`.
        """
        missing = [i for i, seen in enumerate(self._seen) if not seen]
        if missing:
            raise ValueError(f"cannot finalize: parts {missing} never added")
        assert self._outs is not None
        if self.out_dir is not None:
            for arr in self._outs.values():
                arr.flush()
            arrays = {
                name: np.load(self.out_dir / f"{name}.npy", mmap_mode="r")
                for name in Trace.ARRAY_FIELDS
            }
        else:
            arrays = self._outs
        self._outs = None
        merged = Trace(meta=self.meta, **arrays)
        if debug_checks_enabled():
            merged.assert_canonical_order("StreamingMerge")
        return merged


def open_stored(out_dir: str | Path) -> Trace:
    """Re-open a merged store written by :func:`concatenate_stored`.

    The columns come back as read-only memory maps, so a trace larger
    than RAM can be analysed (or streamed through accumulators) without
    ever being fully resident.  Stores written before the run meta rode
    along (no ``__meta__.json``) cannot be re-opened — re-merge the
    shard files, or pass them to the analyzer directly.
    """
    out_dir = Path(out_dir)
    meta_path = out_dir / "__meta__.json"
    if not meta_path.exists():
        raise FileNotFoundError(
            f"{out_dir} has no __meta__.json; it is not a merged trace store "
            f"(or was written by an older version — re-merge the shards)"
        )
    meta_raw = json.loads(meta_path.read_text())
    arrays = {
        name: np.load(out_dir / f"{name}.npy", mmap_mode="r")
        for name in Trace.ARRAY_FIELDS
    }
    return Trace(meta=_meta_from_dict(meta_raw), extra=meta_raw.get("extra", {}), **arrays)
