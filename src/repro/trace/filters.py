"""Post-processing filters (Section 4.1).

"Our post-processing finds all probes that were received within 1 hour
of when they were sent.  We consider a host to have failed if it stops
sending probes for more than 90 seconds, and we disregard probes lost
due to host failure; our numbers only reflect failures that affected
the network, while leaving hosts running."
"""

from __future__ import annotations

import numpy as np

from .records import Trace

__all__ = [
    "RECEIVE_WINDOW_S",
    "HOST_FAILURE_GAP_S",
    "drop_excluded",
    "receive_window_filter",
    "detect_host_failures",
    "apply_standard_filters",
]

#: probes received later than this after sending are treated as lost.
RECEIVE_WINDOW_S = 3600.0

#: a host silent for longer than this is considered failed.
HOST_FAILURE_GAP_S = 90.0


def drop_excluded(trace: Trace) -> Trace:
    """Remove probes the collector marked as host-failure affected."""
    return trace.select(~trace.excluded)


def receive_window_filter(trace: Trace, window_s: float = RECEIVE_WINDOW_S) -> Trace:
    """Convert absurdly late arrivals into losses.

    The paper's aggregation only pairs up packets received within one
    hour of sending; anything later is indistinguishable from a loss.
    """
    if window_s <= 0:
        raise ValueError("window must be positive")
    lost1 = trace.lost1 | (np.nan_to_num(trace.latency1, nan=0.0) > window_s)
    lost2 = trace.lost2 | (np.nan_to_num(trace.latency2, nan=0.0) > window_s)
    out = trace.select(np.ones(len(trace), dtype=bool))
    out.lost1 = lost1
    out.lost2 = lost2
    out.latency1 = np.where(lost1, np.nan, trace.latency1)
    out.latency2 = np.where(lost2, np.nan, trace.latency2)
    return out


def detect_host_failures(
    trace: Trace, gap_s: float = HOST_FAILURE_GAP_S
) -> list[tuple[int, float, float]]:
    """Infer host-failure intervals from probe-sending gaps.

    Returns (host, start, end) tuples for every interval longer than
    ``gap_s`` in which a host initiated no probes — the paper's
    operational definition of host failure.  This works from the trace
    alone (no ground truth), so it can be validated against the
    simulator's actual host-down episodes in tests.
    """
    if gap_s <= 0:
        raise ValueError("gap must be positive")
    failures: list[tuple[int, float, float]] = []
    for host in range(len(trace.meta.host_names)):
        sent = np.sort(trace.t_send[trace.src == host])
        if len(sent) < 2:
            continue
        gaps = np.diff(sent)
        for i in np.nonzero(gaps > gap_s)[0]:
            failures.append((host, float(sent[i]), float(sent[i + 1])))
    return failures


def apply_standard_filters(trace: Trace) -> Trace:
    """The paper's full post-processing pipeline."""
    return drop_excluded(receive_window_filter(trace))
