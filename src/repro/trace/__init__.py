"""Measurement traces: records, persistence and the paper's filters."""

from .filters import (
    HOST_FAILURE_GAP_S,
    RECEIVE_WINDOW_S,
    apply_standard_filters,
    detect_host_failures,
    drop_excluded,
    receive_window_filter,
)
from .fingerprint import trace_fingerprint
from .records import ProbeRecord, Trace, TraceMeta
from .store import load_trace, open_stored, save_trace

__all__ = [
    "HOST_FAILURE_GAP_S",
    "ProbeRecord",
    "RECEIVE_WINDOW_S",
    "Trace",
    "TraceMeta",
    "apply_standard_filters",
    "detect_host_failures",
    "drop_excluded",
    "load_trace",
    "open_stored",
    "receive_window_filter",
    "save_trace",
    "trace_fingerprint",
]
