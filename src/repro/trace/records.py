"""Trace data model: what the measurement system logs.

Section 4.1: "Each probe has a random 64-bit identifier, which the hosts
log along with the time at which packets were both sent and received."
A :class:`Trace` is the aggregated, struct-of-arrays form of those logs
for one collection run; :class:`ProbeRecord` is the per-probe view.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "TraceMeta",
    "ProbeRecord",
    "Trace",
    "id_dtype",
    "ID_CANDIDATES",
    "debug_checks_enabled",
]


def debug_checks_enabled() -> bool:
    """True when ``REPRO_DEBUG_CHECKS`` asks for extra invariant checks.

    Unset, empty, or ``"0"`` means off; anything else turns on the
    O(rows) sanity assertions at shard-merge boundaries.  Read at call
    time so tests (and long-lived processes) can toggle it.
    """
    return os.environ.get("REPRO_DEBUG_CHECKS", "0") not in ("", "0")

#: relay value meaning "the direct path" (matches core.selector.DIRECT).
DIRECT = -1

#: candidate host/relay/method id dtypes, narrowest first.  Signed,
#: because id columns carry the DIRECT (-1) sentinel.  Tests monkeypatch
#: this tuple to force wide ids on small meshes, so every consumer must
#: go through :func:`id_dtype` rather than hard-coding a dtype.
ID_CANDIDATES = (np.int16, np.int32, np.int64)


def id_dtype(capacity: int) -> np.dtype:
    """Smallest signed dtype holding ids ``-1 .. capacity - 1``.

    ``capacity`` is a count (hosts of a mesh, methods of a run).  Meshes
    up to 32767 hosts keep the historical int16 columns — and therefore
    their trace files and fingerprints — while larger runs widen to
    int32/int64 instead of raising.
    """
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    for dt in ID_CANDIDATES:
        if capacity - 1 <= np.iinfo(dt).max:
            return np.dtype(dt)
    raise ValueError(f"no id dtype can hold {capacity} distinct ids")


@dataclass(frozen=True)
class TraceMeta:
    """Run-level metadata carried alongside the probe arrays."""

    dataset: str
    mode: str  # "oneway" | "rtt"
    horizon_s: float
    seed: int
    host_names: tuple[str, ...]
    method_names: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.mode not in ("oneway", "rtt"):
            raise ValueError(f"mode must be 'oneway' or 'rtt', got {self.mode!r}")
        if self.horizon_s <= 0:
            raise ValueError("horizon must be positive")


def require_same_run(metas: list[TraceMeta]) -> TraceMeta:
    """Check that partial traces belong to one run; returns the meta.

    Merging shards of different runs would silently interleave
    incompatible probes, so a mismatch raises naming the offending
    fields.
    """
    meta = metas[0]
    for i, m in enumerate(metas[1:], start=1):
        if m != meta:
            fields = [
                f
                for f in (
                    "dataset",
                    "mode",
                    "horizon_s",
                    "seed",
                    "host_names",
                    "method_names",
                )
                if getattr(m, f) != getattr(meta, f)
            ]
            raise ValueError(
                f"cannot concatenate traces from different runs: part {i} "
                f"disagrees with part 0 on {', '.join(fields)} "
                f"({meta.dataset!r} seed {meta.seed} vs "
                f"{m.dataset!r} seed {m.seed})"
            )
    return meta


@dataclass(frozen=True)
class ProbeRecord:
    """One probe, resolved to host/method names (convenience view)."""

    probe_id: int
    method: str
    src: str
    dst: str
    t_send: float
    relay1: str | None
    relay2: str | None
    lost1: bool
    lost2: bool | None
    latency1: float | None
    latency2: float | None
    excluded: bool


@dataclass
class Trace:
    """All probes of one collection run, as parallel arrays.

    ``lost2``/``latency2``/``relay2`` are meaningful only where the
    method has a second packet (``has_second``).  Latencies are NaN for
    lost packets.  ``excluded`` marks probes affected by host failure;
    the paper's analysis drops them (Section 4.1), which
    :func:`repro.trace.filters.apply_standard_filters` implements.
    """

    meta: TraceMeta
    probe_id: np.ndarray  # uint64
    method_id: np.ndarray  # id_dtype(n_methods) -> meta.method_names
    src: np.ndarray  # id_dtype(n_hosts); int16 below 32768 hosts
    dst: np.ndarray  # id_dtype(n_hosts)
    t_send: np.ndarray  # float64
    relay1: np.ndarray  # id_dtype(n_hosts), DIRECT for direct
    relay2: np.ndarray  # id_dtype(n_hosts)
    lost1: np.ndarray  # bool
    lost2: np.ndarray  # bool
    latency1: np.ndarray  # float32, NaN when lost
    latency2: np.ndarray  # float32
    excluded: np.ndarray  # bool
    extra: dict = field(default_factory=dict)

    ARRAY_FIELDS = (
        "probe_id",
        "method_id",
        "src",
        "dst",
        "t_send",
        "relay1",
        "relay2",
        "lost1",
        "lost2",
        "latency1",
        "latency2",
        "excluded",
    )

    def __post_init__(self) -> None:
        n = len(self.probe_id)
        for name in self.ARRAY_FIELDS:
            arr = getattr(self, name)
            if len(arr) != n:
                raise ValueError(f"field {name} has length {len(arr)}, expected {n}")

    def __len__(self) -> int:
        return len(self.probe_id)

    def __repr__(self) -> str:
        return (
            f"Trace(dataset={self.meta.dataset!r}, seed={self.meta.seed}, "
            f"mode={self.meta.mode!r}, probes={len(self):,}, "
            f"methods={len(self.meta.method_names)})"
        )

    def assert_canonical_order(self, context: str = "") -> "Trace":
        """Assert rows are in canonical (ascending ``probe_id``) order.

        Debug helper for shard-merge boundaries: every merge path sorts
        by ``probe_id``, so a violation here means a merge kernel
        regressed.  Called automatically after :meth:`concatenate` and
        :func:`repro.trace.store.concatenate_stored` when the
        ``REPRO_DEBUG_CHECKS`` environment variable is set (non-empty,
        not ``"0"``).  Returns ``self`` so it can be chained.
        """
        pid = self.probe_id
        if len(pid) > 1 and not bool(np.all(pid[1:] >= pid[:-1])):
            bad = int(np.argmax(~(pid[1:] >= pid[:-1])))
            where = f" ({context})" if context else ""
            raise AssertionError(
                f"trace rows not in canonical probe_id order{where}: "
                f"row {bad} has probe_id {pid[bad]} followed by {pid[bad + 1]}"
            )
        return self

    @property
    def has_second(self) -> np.ndarray:
        """Boolean mask: probes whose method sends two packets."""
        from repro.core.methods import METHODS

        pair_ids = np.array(
            [METHODS[name].is_pair for name in self.meta.method_names]
        )
        return pair_ids[self.method_id]

    def method_mask(self, name: str) -> np.ndarray:
        """Mask selecting probes of one method (by canonical name)."""
        try:
            mid = self.meta.method_names.index(name)
        except ValueError:
            raise KeyError(
                f"trace has no method {name!r}; methods: {self.meta.method_names}"
            ) from None
        return self.method_id == mid

    def select(self, mask: np.ndarray) -> "Trace":
        """A new trace containing only the masked probes."""
        kwargs = {name: getattr(self, name)[mask] for name in self.ARRAY_FIELDS}
        return Trace(meta=self.meta, extra=dict(self.extra), **kwargs)

    def records(self, limit: int | None = None):
        """Iterate probes as :class:`ProbeRecord` (slow; for inspection)."""
        hosts = self.meta.host_names
        n = len(self) if limit is None else min(limit, len(self))
        pair = self.has_second
        for i in range(n):
            two = bool(pair[i])
            yield ProbeRecord(
                probe_id=int(self.probe_id[i]),
                method=self.meta.method_names[self.method_id[i]],
                src=hosts[self.src[i]],
                dst=hosts[self.dst[i]],
                t_send=float(self.t_send[i]),
                relay1=None if self.relay1[i] == DIRECT else hosts[self.relay1[i]],
                relay2=(
                    None
                    if (not two or self.relay2[i] == DIRECT)
                    else hosts[self.relay2[i]]
                ),
                lost1=bool(self.lost1[i]),
                lost2=bool(self.lost2[i]) if two else None,
                latency1=(
                    None if self.lost1[i] else float(self.latency1[i])
                ),
                latency2=(
                    None
                    if (not two or self.lost2[i])
                    else float(self.latency2[i])
                ),
                excluded=bool(self.excluded[i]),
            )

    @staticmethod
    def concatenate(traces: list) -> "Trace":
        """Merge partial traces of one run into canonical order.

        Every part must carry the *same* run meta (dataset, mode,
        horizon, seed, hosts, methods) — merging shards of different
        runs would silently interleave incompatible probes, so a
        mismatch raises naming the offending fields.  The merged rows
        are sorted by ``probe_id``: the identifiers are random 63-bit
        values, so this is a deterministic total order that does not
        depend on how the run was sharded.

        Parts may also be *paths* of spilled shard files written by
        :func:`repro.trace.save_trace`; the merge then streams one
        shard at a time into memory-mapped output arrays
        (:func:`repro.trace.store.concatenate_stored`), bitwise
        identical to the in-RAM merge but with bounded residency.
        """
        if not traces:
            raise ValueError("cannot concatenate zero traces")
        if not isinstance(traces[0], Trace):
            from .store import concatenate_stored  # records <-> store cycle

            return concatenate_stored(traces)
        meta = require_same_run([t.meta for t in traces])
        kwargs = {
            name: np.concatenate([getattr(t, name) for t in traces])
            for name in Trace.ARRAY_FIELDS
        }
        merged = Trace(meta=meta, **kwargs)
        order = np.argsort(merged.probe_id, kind="stable")
        merged = merged.select(order)
        if debug_checks_enabled():
            merged.assert_canonical_order("Trace.concatenate")
        return merged
