"""Trace fingerprints: compact, bitwise-sensitive run summaries.

A fingerprint pins a collection three ways at once:

* a SHA-256 over every probe array's raw bytes (any bit of drift in the
  kernel, the scheduler or the router changes it);
* per-method probe counts and loss rates (localises *which* subsystem
  drifted when the hash moves);
* a one-way-latency quantile digest (catches delay-model drift that
  loss statistics would miss).

Floats survive JSON round-trips exactly (``repr`` is shortest-exact for
doubles), so a stored fingerprint can be compared with ``==``.  The
golden-trace regression test keeps one of these committed; regenerate
it with ``python tools/golden.py --update`` after an *intentional*
behaviour change.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .records import Trace

__all__ = ["trace_fingerprint"]

#: quantile grid of the latency digest.
LATENCY_QUANTILES = (0.10, 0.25, 0.50, 0.75, 0.90, 0.99)


def trace_fingerprint(trace: Trace) -> dict:
    """A JSON-ready fingerprint of one collected trace."""
    h = hashlib.sha256()
    meta = trace.meta
    h.update(
        repr(
            (
                meta.dataset,
                meta.mode,
                meta.horizon_s,
                meta.seed,
                meta.host_names,
                meta.method_names,
            )
        ).encode()
    )
    for name in Trace.ARRAY_FIELDS:
        arr = np.ascontiguousarray(getattr(trace, name))
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(arr.tobytes())

    methods: dict[str, dict] = {}
    pair = trace.has_second
    for mid, mname in enumerate(meta.method_names):
        mask = trace.method_id == mid
        n = int(mask.sum())
        entry: dict = {
            "probes": n,
            "lost1_rate": float(trace.lost1[mask].mean()) if n else 0.0,
        }
        if n and bool(pair[mask].any()):
            entry["lost2_rate"] = float(trace.lost2[mask].mean())
        methods[mname] = entry

    delivered = trace.latency1[~np.isnan(trace.latency1)].astype(np.float64)
    digest = (
        [float(q) for q in np.quantile(delivered, LATENCY_QUANTILES)]
        if len(delivered)
        else []
    )
    return {
        "probes": len(trace),
        "excluded": int(trace.excluded.sum()),
        "sha256": h.hexdigest(),
        "methods": methods,
        "latency_quantiles_s": digest,
    }
