"""`repro.engine`: the scale-out collection engine.

The measurement pipeline in :mod:`repro.testbed.collection` defines the
*semantics* of a run; this package makes large runs fast without
changing a single output bit:

* :class:`ShardedCollector` splits one ``collect()`` by source host into
  deterministic shards executed on a thread/process pool and merged with
  :meth:`repro.trace.Trace.concatenate` — the trace fingerprint is
  identical to a sequential run, because every source block draws from
  its own named RNG substreams and canonical row order is by probe id.
* :class:`ShardedProbe` does the same for the probing subsystem — the
  all-pairs probe grid that feeds reactive routing: per-source-host
  ``probing/<host>`` substreams make any shard layout merge into the
  bitwise-identical :class:`~repro.core.reactive.ProbeSeries`, and the
  routing tables built from it select every grid slot in one batched
  NumPy pass instead of a per-slot Python loop.
* :class:`~repro.engine.substrate.LazyTimelineBank` (via
  ``Network.build(..., substrate="lazy")``) generates per-segment
  substrate timelines on demand behind an LRU budget, so 100-host
  meshes don't pay for — or hold — state their probes never touch.
* **Out-of-core runs** — ``EngineConfig(spill_dir=...)`` streams each
  shard's partial trace through disk as it completes
  (:mod:`repro.engine.spill`) and merges into memory-mapped arrays, so
  a run larger than RAM finishes with residency bounded by
  ``max_resident_shards``; ``shared_memory=True`` parks the substrate
  timeline arrays in one ``multiprocessing.shared_memory`` block
  (:class:`~repro.engine.substrate.SharedTimelineBank`) so process
  pools stop duplicating the substrate — at which point ``"process"``
  becomes the default executor above ``process_min_hosts`` hosts.
* **Pipelined stage execution** — ``EngineConfig(pipeline=True)`` hands
  the run to :func:`~repro.engine.pipeline.collect_pipelined`, which
  drops the barriers between probe/tables/collect/merge that the data
  flow does not force: estimates fold as probe shards land, each
  collection shard starts the moment *its* routing-table block is
  selected, and the merge (plus streaming analysis) scatters finished
  shards while later ones still run.  Same bytes, less pool idle time.

Wire it into sweeps through ``repro.api.Runner(engine=EngineConfig())``.
"""

from .pipeline import collect_pipelined
from .probing import ShardedProbe
from .sharding import (
    EngineConfig,
    ShardedCollector,
    StageConfig,
    always_shard,
    auto_executor,
    plan_shards,
)
from .substrate import LazyTimelineBank, SharedTimelineBank

__all__ = [
    "EngineConfig",
    "StageConfig",
    "ShardedCollector",
    "ShardedProbe",
    "always_shard",
    "auto_executor",
    "collect_pipelined",
    "plan_shards",
    "LazyTimelineBank",
    "SharedTimelineBank",
]
