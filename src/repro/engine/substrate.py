"""Lazy and shared-memory substrates — the engine's public face for
:class:`repro.netsim.substrate.LazyTimelineBank` and
:class:`repro.netsim.substrate.SharedTimelineBank`.

The implementations live in :mod:`repro.netsim.substrate` (they depend
only on netsim types, and ``build_state(substrate=...)`` must not drag
the engine/testbed stack into a pure netsim operation); this module
re-exports them as part of the scale-out engine's API.
"""

from repro.netsim.substrate import LazyTimelineBank, SharedTimelineBank

__all__ = ["LazyTimelineBank", "SharedTimelineBank"]
