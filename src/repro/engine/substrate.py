"""Lazy substrate — the engine's public face for
:class:`repro.netsim.substrate.LazyTimelineBank`.

The implementation lives in :mod:`repro.netsim.substrate` (it depends
only on netsim types, and ``build_state(substrate="lazy")`` must not
drag the engine/testbed stack into a pure netsim operation); this
module re-exports it as part of the scale-out engine's API.
"""

from repro.netsim.substrate import LazyTimelineBank

__all__ = ["LazyTimelineBank"]
