"""Sharded probing: the all-pairs probe grid across all cores.

:class:`ShardedProbe` partitions the probing subsystem's source hosts
into contiguous shards (the same :func:`~repro.engine.sharding.plan_shards`
layout the collector uses), evaluates each shard's probes against the
shared read-only :class:`~repro.netsim.network.Network`, and merges the
partial blocks with :func:`repro.core.reactive.merge_probe_blocks`.
The shard layout cannot affect the output: every source host draws its
phases and packet fates from its own ``probing/<host>`` substream, so
1 shard, 2 shards or one shard per host all fingerprint identically to
the sequential :func:`~repro.core.reactive.run_probing`.  Probing is
direct-path only, so the probe grid is independent of any relay
candidate set the network carries (:mod:`repro.relaysets`); shards
inherit the :class:`~repro.relaysets.RelaySet` read-only through the
shared network and it first matters downstream, at table selection.

Shard count and executor come from the probe stage's
:class:`~repro.engine.sharding.StageConfig` when driven through
:meth:`~repro.engine.ShardedCollector.probe_runner`.

With telemetry enabled, the probe fan-out stamps each shard's submit
time like the collect fan-out does, so ``shard-probe`` spans carry
``queue_wait_ns`` and the waits fold into the
``shard.queue_wait_ns.probe`` / ``shard.exec_ns.probe`` counters (see
:func:`~repro.engine.sharding.run_shards`) — the probe barrier is no
longer invisible to the numbers pipelined execution steers by.
"""

from __future__ import annotations

import os

from repro import telemetry
from repro.core.reactive import (
    ProbeBlock,
    ProbeSeries,
    ProbingPlan,
    merge_probe_blocks,
    prepare_probing,
    probe_rows,
)
from repro.netsim.config import ProbingParams
from repro.netsim.network import Network
from repro.netsim.rng import RngFactory

from .sharding import PROCESS_MIN_HOSTS, _EXECUTORS, auto_executor, plan_shards, run_shards

__all__ = ["ShardedProbe"]


# -- process-pool plumbing (see run_shards) ----------------------------------

_WORKER_PLAN: ProbingPlan | None = None


def _init_worker(plan: ProbingPlan) -> None:
    global _WORKER_PLAN
    _WORKER_PLAN = plan


def _run_shard(bounds: tuple[int, int]) -> ProbeBlock:
    assert _WORKER_PLAN is not None, "worker used before initialisation"
    return telemetry.run_instrumented(probe_rows, _WORKER_PLAN, *bounds)


class ShardedProbe:
    """Executes one probing run sharded by source host.

    Drop-in for :func:`repro.core.reactive.run_probing`::

        series = ShardedProbe(n_shards=4).run(network, params, rngs)

    produces a :class:`ProbeSeries` whose fingerprint is identical to
    the sequential call with the same arguments, for any shard count
    and executor.  ``n_shards=None`` means one shard per available
    core; executors mirror :class:`~repro.engine.EngineConfig`
    (``None`` resolves per run via
    :func:`~repro.engine.sharding.auto_executor`: ``"thread"`` — the
    probe kernels are NumPy-heavy and release the GIL — unless the
    substrate is shared-memory and the mesh has at least
    ``process_min_hosts`` hosts; ``"process"`` forks; ``"serial"`` runs
    inline).
    """

    def __init__(
        self,
        n_shards: int | None = None,
        executor: str | None = None,
        max_workers: int | None = None,
        process_min_hosts: int = PROCESS_MIN_HOSTS,
    ) -> None:
        if n_shards is not None and n_shards < 1:
            raise ValueError("n_shards must be None (auto) or >= 1")
        if executor is not None and executor not in _EXECUTORS:
            raise ValueError(
                f"executor must be None (auto) or one of {_EXECUTORS}, got {executor!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be None or >= 1")
        self.n_shards = n_shards
        self.executor = executor
        self.max_workers = max_workers
        self.process_min_hosts = process_min_hosts

    def resolve_shards(self, n_hosts: int) -> int:
        wanted = self.n_shards or os.cpu_count() or 1
        return max(1, min(wanted, n_hosts))

    def run(
        self,
        network: Network,
        params: ProbingParams,
        rngs: RngFactory,
    ) -> ProbeSeries:
        """Probe every ordered pair over the horizon, sharded."""
        plan = prepare_probing(network, params, rngs)
        ranges = plan_shards(plan.n_hosts, self.resolve_shards(plan.n_hosts))
        executor = self.executor or auto_executor(
            network, plan.n_hosts, self.process_min_hosts
        )
        blocks: list[ProbeBlock] = run_shards(
            plan,
            ranges,
            kernel=probe_rows,
            worker=_run_shard,
            initializer=_init_worker,
            executor=executor,
            max_workers=self.max_workers,
        )
        return merge_probe_blocks(plan, blocks)
