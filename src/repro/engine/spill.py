"""Spill-to-disk collection: shard traces leave RAM as they complete.

An in-RAM sharded run holds every partial :class:`~repro.trace.Trace`
until the final merge, so peak residency grows with the whole run.  In
spill mode each shard kernel writes its partial trace to
``<spill_dir>/shard-<lo>-<hi>.npz`` (the ordinary
:func:`repro.trace.save_trace` format) the moment it finishes and
returns only the *path*; the merge then streams one shard at a time
into memory-mapped output arrays
(:func:`repro.trace.store.concatenate_stored`).  Residency is bounded
by the shards in flight (``EngineConfig.max_resident_shards`` caps the
worker count) plus one shard during the merge — while the output is
bitwise identical to the in-RAM pipeline, because the shard bytes
round-trip exactly through ``.npz`` and the merge applies the same
stable probe-id sort.

With the ``process`` executor this is also the cheapest transport:
workers ship a file path over the pipe instead of pickling millions of
probe rows.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from pathlib import Path

from repro import telemetry
from repro.testbed.collection import CollectionPlan, collect_rows
from repro.trace.store import save_trace

__all__ = ["SpillPlan", "collect_rows_spilled", "run_slug", "shard_path", "shard_files"]


def run_slug(plan: CollectionPlan) -> str:
    """The per-run subdirectory a collection spills into.

    Keyed by the *full* run identity — dataset, mode, exact horizon,
    seed, event schedule on/off, host and method lists (``repr`` floats
    are exact, so near-equal horizons cannot collide), and — for sparse
    runs — the relay candidate-set policy — so a
    :class:`repro.api.Runner` sweep over any spec axis sharing one
    ``spill_dir`` never overwrites one run's shards or merged
    memory-mapped columns with another's (a sparse and a dense run of
    the same dataset cannot clobber each other).  Dense runs omit the
    relay token entirely, keeping their slugs byte-identical to what
    they were before candidate sets existed.  Two collections of the
    *same* run share a slug and produce identical bytes, so re-running
    is idempotent (though not safe concurrently with reading a live
    result of that exact run).
    """
    meta = plan.meta
    ident_t = (
        meta.dataset,
        meta.mode,
        meta.horizon_s,
        plan.seed,
        plan.include_events,
        meta.host_names,
        meta.method_names,
    )
    relay_set = plan.network.paths.relay_set
    if relay_set is not None:
        ident_t = ident_t + (("relay_policy",) + relay_set.spec.canonical(),)
    ident = repr(ident_t)
    digest = hashlib.sha256(ident.encode()).hexdigest()[:10]
    name = re.sub(r"[^A-Za-z0-9._-]+", "_", meta.dataset)
    return f"{name}-seed{plan.seed}-{digest}"


@dataclass(frozen=True, eq=False)
class SpillPlan:
    """A :class:`CollectionPlan` plus the directory its shards spill to
    (the run's own subdirectory of ``EngineConfig.spill_dir`` — see
    :func:`run_slug`)."""

    plan: CollectionPlan
    directory: Path


def shard_path(directory: Path, host_lo: int, host_hi: int) -> Path:
    """Where the shard covering ``[host_lo, host_hi)`` spills to."""
    return Path(directory) / f"shard-{host_lo:05d}-{host_hi:05d}"


def shard_files(directory: str | Path) -> list[Path]:
    """The spilled shard files under a run directory, in host order.

    The inverse of :func:`shard_path`: everything matching
    ``shard-*.npz``, sorted by name (= ascending host range, since the
    bounds are zero-padded).  This is the listing contract
    :meth:`repro.analysis.streaming.StreamingAnalyzer.ingest_dir` uses
    for post-hoc analysis of a spilled run.
    """
    return sorted(Path(directory).glob("shard-*.npz"))


def collect_rows_spilled(splan: SpillPlan, host_lo: int, host_hi: int) -> Path:
    """Evaluate one shard and write it out; returns the ``.npz`` path."""
    trace = collect_rows(splan.plan, host_lo, host_hi)
    with telemetry.span("spill-write", cat="shard", host_lo=host_lo, host_hi=host_hi):
        path = save_trace(trace, shard_path(splan.directory, host_lo, host_hi))
    rec = telemetry.get_recorder()
    if rec.enabled:
        rec.counter_add("spill.bytes", path.stat().st_size)
    return path


# -- process-pool plumbing (see run_shards) ----------------------------------

_WORKER_PLAN: SpillPlan | None = None


def _init_worker(splan: SpillPlan) -> None:
    global _WORKER_PLAN
    _WORKER_PLAN = splan


def _run_shard(bounds: tuple[int, int]) -> Path:
    assert _WORKER_PLAN is not None, "worker used before initialisation"
    return telemetry.run_instrumented(collect_rows_spilled, _WORKER_PLAN, *bounds)
