"""Sharded collection: one big ``collect()`` across all cores.

:class:`ShardedCollector` partitions a run's source hosts into
contiguous shards, evaluates each shard's schedule slice against the
shared read-only :class:`~repro.netsim.network.Network`, and merges the
partial traces with :meth:`repro.trace.Trace.concatenate`.  The shard
layout cannot affect the output: every source block consumes its own
named RNG substreams, the probing subsystem and schedule are generated
once in the parent, and the merged rows land in canonical probe-id
order — so 1 shard, 2 shards or one shard per host all fingerprint
identically to the sequential pipeline.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace

from repro.netsim.network import Network
from repro.testbed.collection import (
    CollectionPlan,
    CollectionResult,
    collect_rows,
    prepare_collection,
)
from repro.testbed.datasets import DatasetSpec
from repro.trace.records import Trace

__all__ = [
    "EngineConfig",
    "ShardedCollector",
    "plan_shards",
    "always_shard",
    "run_shards",
]

_EXECUTORS = ("serial", "thread", "process")
_SUBSTRATES = ("eager", "lazy")


def run_shards(plan, ranges, kernel, worker, initializer, executor, max_workers):
    """Evaluate ``kernel(plan, lo, hi)`` over shard ``ranges`` on one of
    the three executors — the dispatch shared by every sharded stage
    (collection, probing).

    ``serial`` (or a single range) runs inline; ``thread`` maps the
    kernel over a pool (the kernels are NumPy-heavy and release the
    GIL); ``process`` forks workers that inherit ``plan`` by memory
    through ``initializer`` and run the module-level ``worker`` (it
    must be picklable by name), so nothing but the (small) shard ranges
    and partial results crosses the pipe.
    """
    if executor == "serial" or len(ranges) == 1:
        return [kernel(plan, lo, hi) for lo, hi in ranges]
    workers = min(max_workers or os.cpu_count() or 1, len(ranges))
    if executor == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(lambda b: kernel(plan, *b), ranges))
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError as exc:  # pragma: no cover - non-POSIX platforms
        raise RuntimeError(
            "the 'process' executor needs fork(); use executor='thread'"
        ) from exc
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=ctx,
        initializer=initializer,
        initargs=(plan,),
    ) as pool:
        return list(pool.map(worker, ranges))


def plan_shards(n_hosts: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous host ranges ``[lo, hi)`` covering ``range(n_hosts)``.

    Shard sizes differ by at most one host; asking for more shards than
    hosts yields one host per shard.
    """
    if n_hosts < 1:
        raise ValueError("need at least one host")
    if n_shards < 1:
        raise ValueError("need at least one shard")
    n_shards = min(n_shards, n_hosts)
    base, extra = divmod(n_hosts, n_shards)
    ranges: list[tuple[int, int]] = []
    lo = 0
    for i in range(n_shards):
        hi = lo + base + (1 if i < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


@dataclass(frozen=True)
class EngineConfig:
    """How the engine should execute one large collection.

    ``n_shards=None`` means one shard per available core.  The
    ``executor`` is ``"thread"`` by default (the kernels are NumPy-heavy
    and release the GIL); ``"process"`` forks workers for fully parallel
    Python at the cost of shipping partial traces back through pickling;
    ``"serial"`` runs shards inline (debugging, tests).  ``min_hosts``
    is the scenario size at which :class:`repro.api.Runner` switches a
    run from the sequential pipeline to the engine.  ``substrate="lazy"``
    builds networks with on-demand timeline generation bounded by an LRU
    budget of ``max_cached_segments`` per cause.

    The probing subsystem — formerly the last sequential stage of a
    sharded run — is sharded too: ``probe_shards``/``probe_executor``
    configure the :class:`~repro.engine.ShardedProbe` that computes the
    probe grid and routing tables once in the parent, before collection
    shards fan out and share them read-only.  Both default to ``None``,
    meaning "inherit ``n_shards``/``executor``".

    The engine parallelises *within* one run; the runner's
    ``max_workers`` parallelises *across* runs.  Combining both
    oversubscribes cores (each concurrent run spawns its own shard
    pool), so engine sweeps should keep ``Runner(max_workers=1)`` (the
    default) or cap per-run width via ``max_workers`` here.
    """

    n_shards: int | None = None
    executor: str = "thread"
    max_workers: int | None = None
    min_hosts: int = 32
    substrate: str = "eager"
    max_cached_segments: int | None = None
    probe_shards: int | None = None
    probe_executor: str | None = None

    def __post_init__(self) -> None:
        if self.n_shards is not None and self.n_shards < 1:
            raise ValueError("n_shards must be None (auto) or >= 1")
        if self.executor not in _EXECUTORS:
            raise ValueError(f"executor must be one of {_EXECUTORS}, got {self.executor!r}")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be None or >= 1")
        if self.min_hosts < 1:
            raise ValueError("min_hosts must be >= 1")
        if self.substrate not in _SUBSTRATES:
            raise ValueError(f"substrate must be one of {_SUBSTRATES}, got {self.substrate!r}")
        if self.probe_shards is not None and self.probe_shards < 1:
            raise ValueError("probe_shards must be None (inherit) or >= 1")
        if self.probe_executor is not None and self.probe_executor not in _EXECUTORS:
            raise ValueError(
                f"probe_executor must be None or one of {_EXECUTORS}, "
                f"got {self.probe_executor!r}"
            )


# -- process-pool plumbing ---------------------------------------------------
# fork workers inherit the plan (network included) by memory, so nothing
# but the (small) shard ranges and partial traces crosses the pipe.

_WORKER_PLAN: CollectionPlan | None = None


def _init_worker(plan: CollectionPlan) -> None:
    global _WORKER_PLAN
    _WORKER_PLAN = plan


def _run_shard(bounds: tuple[int, int]) -> Trace:
    assert _WORKER_PLAN is not None, "worker used before initialisation"
    return collect_rows(_WORKER_PLAN, *bounds)


class ShardedCollector:
    """Executes one collection sharded by source host.

    Drop-in for :func:`repro.testbed.collect`::

        col = ShardedCollector().collect(dataset("ron2003"), 3600.0, seed=1)

    produces a :class:`CollectionResult` whose trace fingerprint is
    identical to the sequential call with the same arguments.
    """

    def __init__(self, config: EngineConfig | None = None, **overrides) -> None:
        if config is not None and overrides:
            raise ValueError("pass either a config or field overrides, not both")
        self.config = config if config is not None else EngineConfig(**overrides)

    def resolve_shards(self, n_hosts: int) -> int:
        wanted = self.config.n_shards or os.cpu_count() or 1
        return max(1, min(wanted, n_hosts))

    def probe_runner(self):
        """The :class:`~repro.engine.ShardedProbe` this config implies.

        ``probe_shards``/``probe_executor`` default to the collection
        settings, so one config scales both stages together.
        """
        from .probing import ShardedProbe  # sharding <-> probing cycle

        cfg = self.config
        return ShardedProbe(
            n_shards=cfg.probe_shards if cfg.probe_shards is not None else cfg.n_shards,
            executor=cfg.probe_executor or cfg.executor,
            max_workers=cfg.max_workers,
        )

    def collect(
        self,
        spec: DatasetSpec,
        duration_s: float,
        seed: int = 0,
        include_events: bool = True,
        network: Network | None = None,
    ) -> CollectionResult:
        """Collect ``spec`` sharded across the configured executor.

        The probing stage runs first, itself sharded (see
        :meth:`probe_runner`); the resulting routing tables are part of
        the shared plan every collection shard reads."""
        plan = prepare_collection(
            spec,
            duration_s,
            seed=seed,
            include_events=include_events,
            network=network,
            substrate=self.config.substrate,
            max_cached_segments=self.config.max_cached_segments,
            probing=self.probe_runner(),
        )
        ranges = plan_shards(plan.n_hosts, self.resolve_shards(plan.n_hosts))
        parts = self._run(plan, ranges)
        trace = Trace.concatenate(parts)
        return CollectionResult(trace=trace, network=plan.network, tables=plan.tables)

    def _run(self, plan: CollectionPlan, ranges: list[tuple[int, int]]) -> list[Trace]:
        return run_shards(
            plan,
            ranges,
            kernel=collect_rows,
            worker=_run_shard,
            initializer=_init_worker,
            executor=self.config.executor,
            max_workers=self.config.max_workers,
        )


# re-exported convenience: an EngineConfig with sharding forced on for
# any size, used by tests and small-scenario experiments
def always_shard(**overrides) -> EngineConfig:
    """An :class:`EngineConfig` that engages the engine at any host count."""
    return replace(EngineConfig(min_hosts=1), **overrides)
