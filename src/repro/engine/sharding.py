"""Sharded collection: one big ``collect()`` across all cores.

:class:`ShardedCollector` partitions a run's source hosts into
contiguous shards, evaluates each shard's schedule slice against the
shared read-only :class:`~repro.netsim.network.Network`, and merges the
partial traces with :meth:`repro.trace.Trace.concatenate`.  The shard
layout cannot affect the output: every source block consumes its own
named RNG substreams, the probing subsystem and schedule are generated
once in the parent, and the merged rows land in canonical probe-id
order — so 1 shard, 2 shards or one shard per host all fingerprint
identically to the sequential pipeline.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from dataclasses import dataclass, replace
from pathlib import Path

from repro import telemetry
from repro.netsim.network import Network
from repro.netsim.substrate import SharedTimelineBank
from repro.telemetry import clock as _tclock
from repro.testbed.collection import (
    CollectionPlan,
    CollectionResult,
    collect_rows,
    prepare_collection,
)
from repro.testbed.datasets import DatasetSpec
from repro.trace.records import Trace

from . import spill as spill_mod
from .spill import SpillPlan, collect_rows_spilled, run_slug

__all__ = [
    "EngineConfig",
    "StageConfig",
    "ShardedCollector",
    "plan_shards",
    "always_shard",
    "run_shards",
    "auto_executor",
    "PROCESS_MIN_HOSTS",
]

_EXECUTORS = ("serial", "thread", "process")
_SUBSTRATES = ("eager", "lazy")

#: host count at which a zero-copy (shared-memory) run defaults to the
#: process executor: below it, pool start-up costs more than the GIL.
PROCESS_MIN_HOSTS = 64


def auto_executor(network: Network, n_hosts: int, min_hosts: int = PROCESS_MIN_HOSTS) -> str:
    """The executor an unset (``None``) config resolves to.

    ``"process"`` once the substrate is zero-copy across workers — its
    timeline arrays live in shared memory — and the mesh is big enough
    to amortise pool start-up; ``"thread"`` otherwise (the kernels are
    NumPy-heavy and release the GIL).
    """
    if (
        n_hosts >= min_hosts
        and hasattr(os, "fork")
        and isinstance(network.state.congestion, SharedTimelineBank)
    ):
        return "process"
    return "thread"


def run_shards(plan, ranges, kernel, worker, initializer, executor, max_workers, on_result=None):
    """Evaluate ``kernel(plan, lo, hi)`` over shard ``ranges`` on one of
    the three executors — the dispatch shared by every sharded stage
    (collection, probing).

    ``serial`` (or a single range) runs inline; ``thread`` maps the
    kernel over a pool (the kernels are NumPy-heavy and release the
    GIL); ``process`` forks workers that inherit ``plan`` by memory
    through ``initializer`` and run the module-level ``worker`` (it
    must be picklable by name), so nothing but the (small) shard ranges
    and partial results crosses the pipe.

    ``on_result`` is called in the parent, in *completion* order, with
    each result the moment its shard finishes — a slow shard cannot
    head-of-line-block streaming ingest of faster ones (the analysis
    accumulators are order-invariant, see
    :mod:`repro.analysis.streaming`).  The returned list, by contrast,
    is always in submission (= shard range) order, so merge call sites
    never depend on completion timing.

    With telemetry enabled, each shard's submit time is stamped and the
    shard spans it records are annotated with their pool queue wait
    (see :func:`_annotate_shard_waits`) when the fan-out drains.
    Process workers return :class:`~repro.telemetry.ShardEnvelope`
    wrappers (result + the worker's batched spans/counters); they are
    unwrapped here — events absorbed into the parent's recorder —
    before ``on_result`` or the caller sees the value, so every call
    site keeps its pre-telemetry object flow.
    """
    rec = telemetry.get_recorder()
    mark = rec.mark()
    submit_ns: dict[tuple[int, int], int] = {}
    if executor == "serial" or len(ranges) == 1:
        out = []
        for lo, hi in ranges:
            if rec.enabled:
                submit_ns[(lo, hi)] = _tclock.monotonic_ns()
            part = telemetry.unwrap_envelope(kernel(plan, lo, hi))
            if on_result is not None:
                on_result(part)
            out.append(part)
        if rec.enabled:
            _annotate_shard_waits(rec, rec.events_since(mark), submit_ns)
        return out
    workers = min(max_workers or os.cpu_count() or 1, len(ranges))
    if executor == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = []
            for lo, hi in ranges:
                if rec.enabled:
                    submit_ns[(lo, hi)] = _tclock.monotonic_ns()
                futures.append(pool.submit(kernel, plan, lo, hi))
            out = _drain_completed(futures, on_result)
    else:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "the 'process' executor needs fork(); use executor='thread'"
            ) from exc
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=initializer,
            initargs=(plan,),
        ) as pool:
            futures = []
            for bounds in ranges:
                if rec.enabled:
                    submit_ns[tuple(bounds)] = _tclock.monotonic_ns()
                futures.append(pool.submit(worker, bounds))
            out = _drain_completed(futures, on_result)
    if rec.enabled:
        _annotate_shard_waits(rec, rec.events_since(mark), submit_ns)
    return out


def _drain_completed(futures, on_result):
    """Drain futures as they complete; return results in submission order."""
    index = {fut: i for i, fut in enumerate(futures)}
    out: list = [None] * len(futures)
    for fut in as_completed(index):
        part = telemetry.unwrap_envelope(fut.result())
        out[index[fut]] = part
        if on_result is not None:
            on_result(part)
    return out


def plan_shards(n_hosts: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous host ranges ``[lo, hi)`` covering ``range(n_hosts)``.

    Shard sizes differ by at most one host; asking for more shards than
    hosts yields one host per shard.
    """
    if n_hosts < 1:
        raise ValueError("need at least one host")
    if n_shards < 1:
        raise ValueError("need at least one shard")
    n_shards = min(n_shards, n_hosts)
    base, extra = divmod(n_hosts, n_shards)
    ranges: list[tuple[int, int]] = []
    lo = 0
    for i in range(n_shards):
        hi = lo + base + (1 if i < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


@dataclass(frozen=True)
class StageConfig:
    """Execution settings for one engine stage (``probe`` or ``collect``).

    ``None`` fields inherit the run-level ``EngineConfig.n_shards`` /
    ``EngineConfig.executor``; :meth:`EngineConfig.stage` applies that
    resolution rule and returns a fully-resolved ``StageConfig`` (whose
    fields may still be ``None`` when the run-level knobs are auto).
    """

    shards: int | None = None
    executor: str | None = None

    def __post_init__(self) -> None:
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be None (inherit) or >= 1")
        if self.executor is not None and self.executor not in _EXECUTORS:
            raise ValueError(
                f"executor must be None (inherit) or one of {_EXECUTORS}, "
                f"got {self.executor!r}"
            )


@dataclass(frozen=True)
class EngineConfig:
    """How the engine should execute one large collection.

    ``n_shards=None`` means one shard per available core.  The
    ``executor`` defaults to ``None`` — auto: ``"thread"`` normally
    (the kernels are NumPy-heavy and release the GIL), ``"process"``
    once ``shared_memory`` makes the substrate zero-copy across workers
    and the mesh has at least ``process_min_hosts`` hosts; set it
    explicitly to pin a choice (``"serial"`` runs shards inline —
    debugging, tests).  ``min_hosts`` is the scenario size at which
    :class:`repro.api.Runner` switches a run from the sequential
    pipeline to the engine.  ``substrate="lazy"`` builds networks with
    on-demand timeline generation bounded by an LRU budget of
    ``max_cached_segments`` per cause; ``shared_memory=True`` parks the
    (eager) timeline arrays in ``multiprocessing.shared_memory`` so
    pool workers read one physical copy.

    Out-of-core runs: ``spill_dir`` makes every shard write its partial
    trace to disk as it completes and the merge stream through
    memory-mapped arrays (see :mod:`repro.engine.spill`), and
    ``max_resident_shards`` caps how many shards may be in flight — and
    therefore resident — at once.  Each run spills into its own
    subdirectory ``<spill_dir>/<dataset>-seed<seed>-<identity hash>/``
    (see :func:`repro.engine.spill.run_slug`; sweeps over any spec axis
    may share one ``spill_dir``); the merged trace's columns are
    read-only memory maps under its ``merged/``.

    The probing subsystem — formerly the last sequential stage of a
    sharded run — is sharded too.  Per-stage execution is configured
    through :class:`StageConfig`: ``probe=StageConfig(shards=...,
    executor=...)`` scales the :class:`~repro.engine.ShardedProbe` that
    computes the probe grid and routing tables once in the parent
    (before collection shards fan out and share them read-only), and
    ``collect=StageConfig(...)`` does the same for the collection
    fan-out.  Unset (``None``) stage fields inherit the run-level
    ``n_shards``/``executor`` — the single resolution rule of
    :meth:`stage`.  The legacy paired knobs ``probe_shards``/
    ``probe_executor`` are deprecated aliases for ``probe=``; they
    still work (folded into ``probe`` with a :class:`DeprecationWarning`)
    but cannot be combined with an explicit ``probe``.

    ``pipeline=True`` replaces the barrier stage sequence (probe →
    tables → collect → merge, each waiting for the last) with the
    completion-order scheduler of :mod:`repro.engine.pipeline`:
    estimates fold as probe shards land, each collection shard starts
    the moment *its* routing-table block is selected, and the merge
    (plus streaming analysis) scatters finished shards while later ones
    are still collecting.  The output is bitwise identical — stage
    overlap only moves wall-clock idle time, never a byte.  Pipelined
    runs drive probing and collection through one shared pool, so
    ``probe_executor`` is ignored in this mode.

    The engine parallelises *within* one run; the runner's
    ``max_workers`` parallelises *across* runs.  Combining both
    oversubscribes cores (each concurrent run spawns its own shard
    pool), so engine sweeps should keep ``Runner(max_workers=1)`` (the
    default) or cap per-run width via ``max_workers`` here.
    """

    n_shards: int | None = None
    executor: str | None = None
    max_workers: int | None = None
    min_hosts: int = 32
    substrate: str = "eager"
    max_cached_segments: int | None = None
    probe_shards: int | None = None
    probe_executor: str | None = None
    probe: StageConfig | None = None
    collect: StageConfig | None = None
    spill_dir: str | Path | None = None
    max_resident_shards: int | None = None
    shared_memory: bool = False
    process_min_hosts: int = PROCESS_MIN_HOSTS
    pipeline: bool = False

    def __post_init__(self) -> None:
        if self.n_shards is not None and self.n_shards < 1:
            raise ValueError("n_shards must be None (auto) or >= 1")
        if self.executor is not None and self.executor not in _EXECUTORS:
            raise ValueError(
                f"executor must be None (auto) or one of {_EXECUTORS}, "
                f"got {self.executor!r}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be None or >= 1")
        if self.min_hosts < 1:
            raise ValueError("min_hosts must be >= 1")
        if self.substrate not in _SUBSTRATES:
            raise ValueError(f"substrate must be one of {_SUBSTRATES}, got {self.substrate!r}")
        if self.probe is not None and not isinstance(self.probe, StageConfig):
            raise TypeError("probe must be a StageConfig or None")
        if self.collect is not None and not isinstance(self.collect, StageConfig):
            raise TypeError("collect must be a StageConfig or None")
        if self.probe_shards is not None or self.probe_executor is not None:
            if self.probe is not None:
                raise ValueError(
                    "pass either probe=StageConfig(...) or the deprecated "
                    "probe_shards/probe_executor aliases, not both"
                )
            warnings.warn(
                "probe_shards/probe_executor are deprecated; use "
                "probe=StageConfig(shards=..., executor=...)",
                DeprecationWarning,
                stacklevel=3,
            )
            # StageConfig validates the alias values (>= 1, known executor);
            # the aliases are cleared after folding so the canonical form
            # lives in ``probe`` alone (keeps dataclasses.replace sound).
            object.__setattr__(
                self,
                "probe",
                StageConfig(shards=self.probe_shards, executor=self.probe_executor),
            )
            object.__setattr__(self, "probe_shards", None)
            object.__setattr__(self, "probe_executor", None)
        if self.max_resident_shards is not None:
            if self.max_resident_shards < 1:
                raise ValueError("max_resident_shards must be None or >= 1")
            if self.spill_dir is None:
                raise ValueError(
                    "max_resident_shards bounds spilled shards in flight; "
                    "it needs spill_dir"
                )
        if self.shared_memory and self.substrate != "eager":
            raise ValueError(
                "shared_memory shares the eager timeline arrays; combine it "
                f"with substrate='eager', not {self.substrate!r}"
            )
        if self.process_min_hosts < 1:
            raise ValueError("process_min_hosts must be >= 1")

    @property
    def resolved_substrate(self) -> str:
        """The ``Network.build`` substrate flavour this config implies."""
        return "shared" if self.shared_memory else self.substrate

    def stage(self, name: str) -> StageConfig:
        """Resolved execution settings for one stage.

        The single resolution rule of the per-stage config surface: the
        stage's own :class:`StageConfig` fields win where set, the
        run-level ``n_shards``/``executor`` fill the rest.  Fields may
        still come back ``None`` — auto — when neither level pins them.
        """
        if name not in ("probe", "collect"):
            raise ValueError(f"unknown stage {name!r}; stages are 'probe' and 'collect'")
        override = self.probe if name == "probe" else self.collect
        if override is None:
            override = StageConfig()
        return StageConfig(
            shards=override.shards if override.shards is not None else self.n_shards,
            executor=override.executor if override.executor is not None else self.executor,
        )


# -- process-pool plumbing ---------------------------------------------------
# fork workers inherit the plan (network included) by memory, so nothing
# but the (small) shard ranges and partial traces crosses the pipe.

_WORKER_PLAN: CollectionPlan | None = None


def _init_worker(plan: CollectionPlan) -> None:
    global _WORKER_PLAN
    _WORKER_PLAN = plan


def _run_shard(bounds: tuple[int, int]) -> Trace:
    assert _WORKER_PLAN is not None, "worker used before initialisation"
    return telemetry.run_instrumented(collect_rows, _WORKER_PLAN, *bounds)


#: which per-stage counter suffix a shard span's waits fold into.
#: ``spill-write`` spans get the args annotation but no counter: the
#: write happens inside an already-executing shard, so its "wait" is
#: the same pool wait the enclosing ``shard-collect`` span reports.
_SPAN_STAGE = {"shard-probe": "probe", "shard-collect": "collect"}


def _annotate_shard_waits(recorder, events, submit_ns: dict) -> None:
    """Stamp per-shard queue wait onto the shard spans of one fan-out.

    ``submit_ns`` maps each shard's ``(host_lo, host_hi)`` to the
    parent's submit time for that shard.  ``CLOCK_MONOTONIC`` is
    machine-wide, so a worker span's begin time minus that stamp is the
    shard's pool queue wait — how long it sat behind ``max_workers``/
    ``max_resident_shards`` before executing.  Waits and exec times
    fold into per-stage counters (``shard.queue_wait_ns.probe`` /
    ``shard.queue_wait_ns.collect``, likewise ``shard.exec_ns.*``) and
    into the stage-summed totals (``shard.queue_wait_ns`` /
    ``shard.exec_ns``) — the numbers the pipelined scheduler reclaims
    barrier idle time against.  Spans already annotated (an earlier
    fan-out's) are left untouched.
    """
    for ev in events:
        if ev.get("ev") != "span" or ev.get("cat") != "shard":
            continue
        args = ev["args"]
        if "queue_wait_ns" in args:
            continue
        base = submit_ns.get((args.get("host_lo"), args.get("host_hi")))
        if base is None:
            continue
        wait = max(ev["ts_ns"] - base, 0)
        args["queue_wait_ns"] = wait
        stage = _SPAN_STAGE.get(ev["name"])
        if stage is not None:
            recorder.counter_add("shard.queue_wait_ns", wait)
            recorder.counter_add("shard.exec_ns", ev["dur_ns"])
            recorder.counter_add(f"shard.queue_wait_ns.{stage}", wait)
            recorder.counter_add(f"shard.exec_ns.{stage}", ev["dur_ns"])


class ShardedCollector:
    """Executes one collection sharded by source host.

    Drop-in for :func:`repro.testbed.collect`::

        col = ShardedCollector().collect(dataset("ron2003"), 3600.0, seed=1)

    produces a :class:`CollectionResult` whose trace fingerprint is
    identical to the sequential call with the same arguments.
    """

    def __init__(self, config: EngineConfig | None = None, **overrides) -> None:
        if config is not None and overrides:
            raise ValueError("pass either a config or field overrides, not both")
        self.config = config if config is not None else EngineConfig(**overrides)

    def resolve_shards(self, n_hosts: int) -> int:
        wanted = self.config.stage("collect").shards or os.cpu_count() or 1
        return max(1, min(wanted, n_hosts))

    def resolve_workers(self) -> int | None:
        """Pool width: ``max_workers``, capped by ``max_resident_shards``
        in spill mode (a shard in flight is a shard resident)."""
        cfg = self.config
        if cfg.max_resident_shards is None:
            return cfg.max_workers
        return min(cfg.max_workers or os.cpu_count() or 1, cfg.max_resident_shards)

    def probe_runner(self):
        """The :class:`~repro.engine.ShardedProbe` this config implies.

        The probe stage's :class:`StageConfig` resolves against the
        run-level settings (see :meth:`EngineConfig.stage`), so one
        config scales both stages together; a ``None`` executor
        resolves per run (see :func:`auto_executor`).
        """
        from .probing import ShardedProbe  # sharding <-> probing cycle

        cfg = self.config
        probe = cfg.stage("probe")
        return ShardedProbe(
            n_shards=probe.shards,
            executor=probe.executor,
            max_workers=cfg.max_workers,
            process_min_hosts=cfg.process_min_hosts,
        )

    def collect(
        self,
        spec: DatasetSpec,
        duration_s: float,
        seed: int = 0,
        include_events: bool = True,
        network: Network | None = None,
        analyzer=None,
    ) -> CollectionResult:
        """Collect ``spec`` sharded across the configured executor.

        The probing stage runs first, itself sharded (see
        :meth:`probe_runner`); the resulting routing tables are part of
        the shared plan every collection shard reads.  With
        ``spill_dir`` set, shards stream through disk instead of RAM
        (see :mod:`repro.engine.spill`) — same bytes, bounded
        residency, and the result records its run's spill directory.

        ``analyzer`` (a
        :class:`repro.analysis.StreamingAnalyzer`) has each completed
        shard folded into it — ``analyzer.ingest(part)`` in the parent,
        in completion order (the accumulators are order-invariant) — so
        Table/Figure statistics are ready the moment the run (or even
        just its first shards) are.

        With ``pipeline=True`` the whole call is handed to the
        completion-order scheduler (:mod:`repro.engine.pipeline`),
        which overlaps the probe/tables/collect/merge stages instead of
        running them as barriers; result, spans and manifest keep this
        method's contract, and the trace is bitwise identical.

        With telemetry enabled (:func:`repro.telemetry.enable`), the
        full stage pipeline — probe, tables, collect, per-shard
        kernels, spill writes, merge, analyze — records spans and
        counters; a spilled run additionally persists them as a
        ``telemetry.jsonl`` manifest in its run directory (see
        :mod:`repro.telemetry`).  The output trace is byte-identical
        either way."""
        if self.config.pipeline:
            from .pipeline import collect_pipelined  # sharding <-> pipeline cycle

            return collect_pipelined(
                self,
                spec,
                duration_s,
                seed=seed,
                include_events=include_events,
                network=network,
                analyzer=analyzer,
            )
        rec = telemetry.get_recorder()
        mark = rec.mark()
        counters_base = rec.counter_snapshot()
        plan = prepare_collection(
            spec,
            duration_s,
            seed=seed,
            include_events=include_events,
            network=network,
            substrate=self.config.resolved_substrate,
            max_cached_segments=self.config.max_cached_segments,
            probing=self.probe_runner(),
        )
        ranges = plan_shards(plan.n_hosts, self.resolve_shards(plan.n_hosts))
        executor = self.config.stage("collect").executor or auto_executor(
            plan.network, plan.n_hosts, self.config.process_min_hosts
        )
        on_result = analyzer.ingest if analyzer is not None else None
        directory: Path | None = None
        with rec.span("collect", cat="stage", executor=executor, shards=len(ranges)):
            if self.config.spill_dir is not None:
                directory = Path(self.config.spill_dir) / run_slug(plan)
                directory.mkdir(parents=True, exist_ok=True)
                parts = run_shards(
                    SpillPlan(plan=plan, directory=directory),
                    ranges,
                    kernel=collect_rows_spilled,
                    worker=spill_mod._run_shard,
                    initializer=spill_mod._init_worker,
                    executor=executor,
                    max_workers=self.resolve_workers(),
                    on_result=on_result,
                )
            else:
                parts = self._run(plan, ranges, executor, on_result)
        with rec.span("merge", cat="stage", parts=len(parts)):
            trace = Trace.concatenate(parts)
        if rec.enabled:
            rss = _tclock.peak_rss_bytes()
            if rss is not None:
                rec.gauge_set("process.peak_rss_bytes", rss)
            if directory is not None:
                telemetry.write_manifest(
                    directory,
                    rec.events(mark, counters_base),
                    run={
                        "dataset": plan.meta.dataset,
                        "mode": plan.meta.mode,
                        "seed": plan.seed,
                        "horizon_s": plan.meta.horizon_s,
                        "hosts": plan.n_hosts,
                        "methods": list(plan.meta.method_names),
                        "executor": executor,
                        "n_shards": len(ranges),
                        "pid": os.getpid(),
                    },
                )
        return CollectionResult(
            trace=trace, network=plan.network, tables=plan.tables, spill_dir=directory
        )

    def _run(
        self,
        plan: CollectionPlan,
        ranges: list[tuple[int, int]],
        executor: str,
        on_result=None,
    ) -> list[Trace]:
        return run_shards(
            plan,
            ranges,
            kernel=collect_rows,
            worker=_run_shard,
            initializer=_init_worker,
            executor=executor,
            max_workers=self.resolve_workers(),
            on_result=on_result,
        )


# re-exported convenience: an EngineConfig with sharding forced on for
# any size, used by tests and small-scenario experiments
def always_shard(**overrides) -> EngineConfig:
    """An :class:`EngineConfig` that engages the engine at any host count."""
    return replace(EngineConfig(min_hosts=1), **overrides)
