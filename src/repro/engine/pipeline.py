"""Pipelined stage execution: completion-order scheduling across stages.

The barrier engine (:meth:`repro.engine.ShardedCollector.collect`) runs
probe → tables → collect → merge with a full stop between stages: every
probe shard must land before estimation starts, the whole mesh's routing
tables must be selected before any collection shard is submitted, and
every collection shard must finish before the merge touches a row.  On
a pool narrower than the shard count, each barrier converts shard-
completion skew straight into idle cores — visible as the
``shard.queue_wait_ns.*`` counters :func:`~repro.engine.sharding.run_shards`
folds.

:func:`collect_pipelined` keeps the stages but drops the barriers that
the data flow does not force:

* **probe ↔ estimate fold** — :func:`~repro.core.reactive.probe_estimates`
  is column-independent (the rolling windows run along the slot axis),
  so each probe shard's rows of the full-mesh estimate arrays are folded
  the moment that shard lands, while other shards are still probing.
  The probe → tables boundary itself is a true barrier: a routing table
  needs *every* host's probes (relay legs reach the whole mesh), so
  selection cannot start until the last probe shard has folded.
* **tables ↔ collect** — selection is row-independent
  (:func:`~repro.core.selector.select_paths_block`), so the tables are
  built per collection-shard source range and each shard's collection
  is submitted the moment *its* :class:`~repro.core.reactive.RoutingTableBlock`
  is ready — block ``j+1`` selects while shard ``j`` collects.  The
  table builder runs on a parent-side single thread: width 1 keeps the
  tables/collect overlap deterministic and the selection NumPy kernels
  release the GIL anyway.
* **collect ↔ merge / ingest** — the canonical output order is a stable
  sort by ``probe_id``, and the collection plan already knows every
  row's probe id, so the merge destination of every shard is computed
  up front (:class:`repro.trace.store.StreamingMerge`) and each
  finished shard is scattered — and fed to the streaming analyzer —
  while later shards are still collecting.

Stage overlap moves wall-clock idle time, never a byte: the trace, the
tables and the spilled files are bitwise identical to the barrier
engine and the sequential pipeline (held by
``tests/engine/test_pipeline.py`` across the executor × shard × spill
zoo).  Probing and collection share one pool, so the probe stage's
executor override (``EngineConfig.probe.executor``, or the deprecated
``probe_executor`` alias) is ignored in this mode; the probe stage's
shard count still controls the probe fan-out width.

With telemetry enabled the run records the same ``stage`` spans as the
barrier engine — but post-hoc (:meth:`repro.telemetry.Recorder.record_span`),
because overlapping stages cannot be nested context managers; each
carries ``pipelined=True`` and a Chrome trace export shows the stages
overlapping.  Per-shard ``queue_wait_ns`` annotation works exactly as
in :func:`~repro.engine.sharding.run_shards`: probe-stage waits are
stamped when the probe fan-out drains, collect-stage waits at the end
(the two fan-outs reuse the same host ranges, so annotating per stage
window keeps their submit stamps apart).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
    wait,
)
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.core.reactive import (
    ProbeSeries,
    RoutingTableBlock,
    RoutingTables,
    assemble_routing_tables,
    build_table_block,
    prepare_probing,
    probe_estimates,
    probe_rows,
)
from repro.netsim.network import Network
from repro.netsim.rng import RngFactory
from repro.telemetry import clock as _tclock
from repro.testbed.collection import (
    CollectionPlan,
    CollectionResult,
    collect_rows,
    prepare_collection_base,
)
from repro.testbed.datasets import DatasetSpec
from repro.trace.store import StreamingMerge

from .sharding import _annotate_shard_waits, auto_executor, plan_shards
from .spill import SpillPlan, collect_rows_spilled, run_slug

__all__ = ["collect_pipelined"]


# -- process-pool plumbing ---------------------------------------------------
# one fork-time context serves both stages: workers inherit the probing
# plan and the (table-less) collection plan by memory; only the shard
# ranges, per-shard RoutingTableBlocks and partial results cross the pipe.


@dataclass(frozen=True, eq=False)
class _PipelineContext:
    """What a pipelined pool worker inherits at fork time."""

    probing: object | None  # ProbingPlan, or None when no method probes
    collection: CollectionPlan  # tables=None; blocks ship per task
    spill: Path | None


_CTX: _PipelineContext | None = None


def _init_worker(ctx: _PipelineContext) -> None:
    global _CTX
    _CTX = ctx


def _probe_task(bounds: tuple[int, int]):
    assert _CTX is not None and _CTX.probing is not None, "worker used before initialisation"
    return telemetry.run_instrumented(probe_rows, _CTX.probing, *bounds)


def _collect_block(
    plan: CollectionPlan,
    host_lo: int,
    host_hi: int,
    block: RoutingTableBlock | None,
    spill_dir: Path | None,
):
    """Collect one shard against its own routing-table block.

    The pipelined collect kernel: the shard's plan is the shared
    table-less plan with *its* block swapped in
    (:class:`~repro.core.reactive.RoutingTableBlock` duck-types
    ``RoutingTables.lookup`` for the shard's own sources — the only rows
    it ever asks about), so routing and evaluation are bitwise the
    barrier kernel's.  Spill mode writes the shard out exactly like
    :func:`~repro.engine.spill.collect_rows_spilled`.
    """
    if block is not None:
        plan = replace(plan, tables=block)
    if spill_dir is not None:
        return collect_rows_spilled(
            SpillPlan(plan=plan, directory=spill_dir), host_lo, host_hi
        )
    return collect_rows(plan, host_lo, host_hi)


def _collect_task(bounds: tuple[int, int], block: RoutingTableBlock | None):
    assert _CTX is not None, "worker used before initialisation"
    return telemetry.run_instrumented(
        _collect_block, _CTX.collection, bounds[0], bounds[1], block, _CTX.spill
    )


def collect_pipelined(
    collector,
    spec: DatasetSpec,
    duration_s: float,
    seed: int = 0,
    include_events: bool = True,
    network: Network | None = None,
    analyzer=None,
) -> CollectionResult:
    """Collect ``spec`` with overlapped stages; bitwise the barrier result.

    The ``EngineConfig(pipeline=True)`` entry point, dispatched to by
    :meth:`~repro.engine.ShardedCollector.collect` (same signature,
    same :class:`~repro.testbed.collection.CollectionResult` contract —
    including the spilled manifest, which additionally records
    ``"pipeline": true``).  See the module docstring for which barriers
    are dropped and why the bytes cannot move.
    """
    cfg = collector.config
    rec = telemetry.get_recorder()
    mark = rec.mark()
    counters_base = rec.counter_snapshot()

    plan = prepare_collection_base(
        spec,
        duration_s,
        seed=seed,
        include_events=include_events,
        network=network,
        substrate=cfg.resolved_substrate,
        max_cached_segments=cfg.max_cached_segments,
    )
    n = plan.n_hosts
    netcfg = spec.network_config(duration_s, include_events=include_events)
    relay_set = plan.network.paths.relay_set
    ranges = plan_shards(n, collector.resolve_shards(n))
    executor = cfg.stage("collect").executor or auto_executor(
        plan.network, n, cfg.process_min_hosts
    )

    probing_plan = None
    probe_ranges: list[tuple[int, int]] = []
    if any(m.needs_probing for m in plan.methods):
        probing_plan = prepare_probing(plan.network, netcfg.probing, RngFactory(seed))
        probe_ranges = plan_shards(n, collector.probe_runner().resolve_shards(n))

    directory: Path | None = None
    if cfg.spill_dir is not None:
        directory = Path(cfg.spill_dir) / run_slug(plan)
        directory.mkdir(parents=True, exist_ok=True)

    # merge destinations are known before any shard runs: the schedule
    # holds every row's probe id, and contiguous ascending source ranges
    # make schedule order the part-concatenation order
    offsets = [int(plan.bounds[lo]) for lo, _ in ranges] + [int(plan.bounds[n])]
    merge = StreamingMerge(
        meta=plan.meta,
        pids=plan.sched.probe_id,
        offsets=offsets,
        out_dir=None if directory is None else directory / "merged",
    )
    on_result = analyzer.ingest if analyzer is not None else None

    # full-mesh estimates, folded per probe shard as blocks land
    if probing_plan is not None:
        g = probing_plan.n_slots
        loss_est = np.empty((g, n, n), dtype=np.float64)
        lat_est = np.empty((g, n, n), dtype=np.float64)
        failed = np.empty((g, n, n), dtype=bool)

    probe_submit: dict[tuple[int, int], int] = {}
    collect_submit: dict[tuple[int, int], int] = {}
    table_blocks: list[RoutingTableBlock | None] = [None] * len(ranges)
    t_probe0 = t_probe1 = t_tables0 = t_tables1 = None
    t_collect0 = t_collect1 = t_merge0 = None

    def fold_probe(block) -> None:
        with rec.span(
            "estimate-fold", cat="pipeline", host_lo=block.host_lo, host_hi=block.host_hi
        ):
            series = ProbeSeries(
                interval=probing_plan.interval, lost=block.lost, latency=block.latency
            )
            le, la, fa = probe_estimates(series, netcfg.probing)
            loss_est[:, block.host_lo : block.host_hi, :] = le
            lat_est[:, block.host_lo : block.host_hi, :] = la
            failed[:, block.host_lo : block.host_hi, :] = fa

    def drain_part(j: int, part) -> None:
        nonlocal t_merge0
        part = telemetry.unwrap_envelope(part)
        if on_result is not None:
            on_result(part)
        if t_merge0 is None:
            t_merge0 = _tclock.monotonic_ns()
        with rec.span("merge-scatter", cat="pipeline", part=j):
            merge.add(j, part)

    if executor == "serial":
        # degenerate inline schedule: same stage interleaving (tables
        # block j+1 after collect j, merge after each part), one thread
        probe_mark = rec.mark()
        if probing_plan is not None:
            t_probe0 = _tclock.monotonic_ns()
            for lo, hi in probe_ranges:
                if rec.enabled:
                    probe_submit[(lo, hi)] = _tclock.monotonic_ns()
                fold_probe(probe_rows(probing_plan, lo, hi))
            t_probe1 = _tclock.monotonic_ns()
            if rec.enabled:
                _annotate_shard_waits(rec, rec.events_since(probe_mark), probe_submit)
        for j, (lo, hi) in enumerate(ranges):
            block = None
            if probing_plan is not None:
                if t_tables0 is None:
                    t_tables0 = _tclock.monotonic_ns()
                block = build_table_block(
                    loss_est,
                    lat_est,
                    failed,
                    probing_plan.interval,
                    netcfg.probing,
                    lo,
                    hi,
                    relay_set=relay_set,
                )
                t_tables1 = _tclock.monotonic_ns()
                table_blocks[j] = block
            if rec.enabled:
                collect_submit[(lo, hi)] = _tclock.monotonic_ns()
            if t_collect0 is None:
                t_collect0 = _tclock.monotonic_ns()
            part = _collect_block(plan, lo, hi, block, directory)
            t_collect1 = _tclock.monotonic_ns()
            drain_part(j, part)
    else:
        if executor == "process":
            try:
                mp_ctx = multiprocessing.get_context("fork")
            except ValueError as exc:  # pragma: no cover - non-POSIX platforms
                raise RuntimeError(
                    "the 'process' executor needs fork(); use executor='thread'"
                ) from exc
            pool = ProcessPoolExecutor(
                max_workers=min(
                    collector.resolve_workers() or os.cpu_count() or 1,
                    max(len(ranges), len(probe_ranges) or 1),
                ),
                mp_context=mp_ctx,
                initializer=_init_worker,
                initargs=(
                    _PipelineContext(
                        probing=probing_plan, collection=plan, spill=directory
                    ),
                ),
            )
        else:
            pool = ThreadPoolExecutor(
                max_workers=min(
                    collector.resolve_workers() or os.cpu_count() or 1,
                    max(len(ranges), len(probe_ranges) or 1),
                )
            )
        table_pool = ThreadPoolExecutor(max_workers=1) if probing_plan is not None else None
        try:
            probe_mark = rec.mark()
            if probing_plan is not None:
                t_probe0 = _tclock.monotonic_ns()
                probe_futs = {}
                for lo, hi in probe_ranges:
                    if rec.enabled:
                        probe_submit[(lo, hi)] = _tclock.monotonic_ns()
                    if executor == "thread":
                        fut = pool.submit(probe_rows, probing_plan, lo, hi)
                    else:
                        fut = pool.submit(_probe_task, (lo, hi))
                    probe_futs[fut] = (lo, hi)
                for fut in as_completed(probe_futs):
                    fold_probe(telemetry.unwrap_envelope(fut.result()))
                t_probe1 = _tclock.monotonic_ns()
                if rec.enabled:
                    _annotate_shard_waits(rec, rec.events_since(probe_mark), probe_submit)

            collect_futs: dict = {}
            table_futs: dict = {}

            def submit_collect(j: int, block: RoutingTableBlock | None):
                nonlocal t_collect0
                lo, hi = ranges[j]
                if rec.enabled:
                    collect_submit[(lo, hi)] = _tclock.monotonic_ns()
                if t_collect0 is None:
                    t_collect0 = _tclock.monotonic_ns()
                if executor == "thread":
                    fut = pool.submit(_collect_block, plan, lo, hi, block, directory)
                else:
                    fut = pool.submit(_collect_task, (lo, hi), block)
                collect_futs[fut] = j
                return fut

            pending = set()
            if probing_plan is not None:
                t_tables0 = _tclock.monotonic_ns()
                for j, (lo, hi) in enumerate(ranges):
                    fut = table_pool.submit(
                        build_table_block,
                        loss_est,
                        lat_est,
                        failed,
                        probing_plan.interval,
                        netcfg.probing,
                        lo,
                        hi,
                        relay_set,
                    )
                    table_futs[fut] = j
                    pending.add(fut)
            else:
                for j in range(len(ranges)):
                    pending.add(submit_collect(j, None))

            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    if fut in table_futs:
                        j = table_futs[fut]
                        block = fut.result()
                        table_blocks[j] = block
                        t_tables1 = _tclock.monotonic_ns()
                        pending.add(submit_collect(j, block))
                    else:
                        j = collect_futs[fut]
                        part = fut.result()
                        t_collect1 = _tclock.monotonic_ns()
                        drain_part(j, part)
        finally:
            pool.shutdown(wait=True)
            if table_pool is not None:
                table_pool.shutdown(wait=True)

    tables: RoutingTables | None = None
    if probing_plan is not None:
        tables = assemble_routing_tables(
            probing_plan.interval, loss_est, failed, table_blocks
        )
    trace = merge.finalize()
    t_merge1 = _tclock.monotonic_ns()

    if rec.enabled:
        _annotate_shard_waits(rec, rec.events_since(mark), collect_submit)
        if t_probe0 is not None:
            rec.record_span(
                "probe",
                cat="stage",
                ts_ns=t_probe0,
                dur_ns=t_probe1 - t_probe0,
                sharded=True,
                hosts=n,
                pipelined=True,
            )
            rec.record_span(
                "tables",
                cat="stage",
                ts_ns=t_tables0,
                dur_ns=t_tables1 - t_tables0,
                hosts=n,
                pipelined=True,
            )
        rec.record_span(
            "collect",
            cat="stage",
            ts_ns=t_collect0,
            dur_ns=t_collect1 - t_collect0,
            executor=executor,
            shards=len(ranges),
            pipelined=True,
        )
        rec.record_span(
            "merge",
            cat="stage",
            ts_ns=t_merge0 if t_merge0 is not None else t_merge1,
            dur_ns=t_merge1 - (t_merge0 if t_merge0 is not None else t_merge1),
            parts=len(ranges),
            pipelined=True,
        )
        rss = _tclock.peak_rss_bytes()
        if rss is not None:
            rec.gauge_set("process.peak_rss_bytes", rss)
        if directory is not None:
            telemetry.write_manifest(
                directory,
                rec.events(mark, counters_base),
                run={
                    "dataset": plan.meta.dataset,
                    "mode": plan.meta.mode,
                    "seed": plan.seed,
                    "horizon_s": plan.meta.horizon_s,
                    "hosts": plan.n_hosts,
                    "methods": list(plan.meta.method_names),
                    "executor": executor,
                    "n_shards": len(ranges),
                    "pid": os.getpid(),
                    "pipeline": True,
                },
            )
    return CollectionResult(
        trace=trace, network=plan.network, tables=tables, spill_dir=directory
    )
