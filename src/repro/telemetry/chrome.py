"""Chrome-trace-event export: open a run in ``chrome://tracing``/Perfetto.

Converts recorder events into the Trace Event Format's JSON object form
(``{"traceEvents": [...]}``): spans become complete (``"ph": "X"``)
events on their original pid/tid tracks, counters and gauges become
counter (``"ph": "C"``) samples, and metadata (``"ph": "M"``) events
label each process track — the engine parent vs its shard workers.
Timestamps are microseconds relative to the earliest span, so traces
open zoomed to the run rather than to nanoseconds-since-boot.

:func:`validate_chrome_trace` is the schema check the CLI applies after
every export and CI's telemetry smoke step runs on the artifact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["chrome_trace", "export_chrome_trace", "validate_chrome_trace"]


def chrome_trace(events: list[dict], header: dict | None = None) -> dict:
    """Trace Event Format document for a recorder/manifest event list."""
    spans = [ev for ev in events if ev.get("ev") == "span"]
    t0 = min((ev["ts_ns"] for ev in spans), default=0)
    end_us = max(((ev["ts_ns"] + ev["dur_ns"] - t0) / 1e3 for ev in spans), default=0.0)
    out: list[dict] = []

    pids: dict[int, str] = {}
    parent_pid = (header or {}).get("run", {}).get("pid", os.getpid())
    for ev in spans:
        pids.setdefault(
            ev["pid"], "engine" if ev["pid"] == parent_pid else f"worker-{ev['pid']}"
        )
        out.append(
            {
                "ph": "X",
                "name": ev["name"],
                "cat": ev.get("cat", "run"),
                "ts": (ev["ts_ns"] - t0) / 1e3,
                "dur": ev["dur_ns"] / 1e3,
                "pid": ev["pid"],
                "tid": ev["tid"],
                "args": ev.get("args", {}),
            }
        )
    for ev in events:
        if ev.get("ev") in ("counter", "gauge"):
            pid = ev.get("pid", parent_pid)
            pids.setdefault(pid, "engine" if pid == parent_pid else f"worker-{pid}")
            out.append(
                {
                    "ph": "C",
                    "name": ev["name"],
                    "ts": end_us,
                    "pid": pid,
                    "args": {"value": ev["value"]},
                }
            )
    meta = [
        {"ph": "M", "name": "process_name", "pid": pid, "args": {"name": label}}
        for pid, label in sorted(pids.items())
    ]
    doc = {
        "traceEvents": meta + out,
        "displayTimeUnit": "ms",
    }
    if header is not None:
        doc["metadata"] = {"run": header.get("run", {}), "version": header.get("version")}
    return doc


def export_chrome_trace(
    events: list[dict], path: str | Path, header: dict | None = None
) -> Path:
    """Write (and validate) the Chrome trace for an event list."""
    doc = chrome_trace(events, header=header)
    validate_chrome_trace(doc)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc))
    return path


def validate_chrome_trace(doc: dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed trace document.

    Checks the envelope (a ``traceEvents`` list) and every event's
    per-phase required fields — what ``chrome://tracing`` needs to load
    the file at all.
    """
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise ValueError("not a Chrome trace: no 'traceEvents' list")
    for i, ev in enumerate(doc["traceEvents"]):
        if not isinstance(ev, dict) or "ph" not in ev:
            raise ValueError(f"traceEvents[{i}]: not an event object with 'ph'")
        ph = ev["ph"]
        if ph == "X":
            for field, kind in (
                ("name", str),
                ("ts", (int, float)),
                ("dur", (int, float)),
                ("pid", int),
                ("tid", int),
            ):
                if not isinstance(ev.get(field), kind):
                    raise ValueError(f"traceEvents[{i}]: X event needs {field}")
            if ev["dur"] < 0:
                raise ValueError(f"traceEvents[{i}]: negative duration")
        elif ph == "C":
            if not isinstance(ev.get("name"), str) or not isinstance(
                ev.get("args"), dict
            ):
                raise ValueError(f"traceEvents[{i}]: C event needs name and args")
        elif ph == "M":
            if not isinstance(ev.get("name"), str):
                raise ValueError(f"traceEvents[{i}]: M event needs name")
        else:
            raise ValueError(f"traceEvents[{i}]: unexpected phase {ph!r}")
