"""Span/counter recording: a no-op by default, cheap when enabled.

The module holds one process-wide recorder.  Disabled (the default) it
is the :class:`NullRecorder`: every instrumentation site costs one
global load plus an attribute check or a no-op context manager, so the
hot path pays nothing measurable.  :func:`enable` swaps in a
:class:`Recorder` that captures

* **spans** — named, categorised intervals with monotonic begin/end
  nanoseconds, pid/tid and free-form args (one dict per span);
* **counters** — named sums aggregated in place (``collect.rows``,
  ``spill.bytes``, substrate LRU hits), so high-frequency increments
  never grow an event list;
* **gauges** — named last-value samples (peak RSS).

Cross-process propagation: process-pool shard kernels cannot append to
the parent's recorder, so their module-level workers wrap the kernel in
:func:`run_instrumented` — a fresh recorder for the duration, with the
batched events shipped back in a :class:`ShardEnvelope` alongside the
shard's result and folded into the parent's recorder by
:func:`unwrap_envelope` (called where results drain, see
:func:`repro.engine.sharding.run_shards`).  Thread and serial executors
record straight into the shared recorder; envelopes simply never appear.

Determinism: recording touches no RNG and no simulation state, so the
golden trace fingerprint is byte-identical with telemetry fully enabled
(``tests/telemetry/test_determinism.py`` holds this across executors).

Set ``REPRO_TELEMETRY=1`` to enable recording at import time (how CLI
runs like ``tools/golden.py`` get instrumented without code changes).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

from . import clock

__all__ = [
    "NullRecorder",
    "Recorder",
    "ShardEnvelope",
    "get_recorder",
    "set_recorder",
    "enable",
    "disable",
    "recording",
    "span",
    "counter_add",
    "gauge_set",
    "run_instrumented",
    "unwrap_envelope",
]


class _NullSpan:
    """The shared do-nothing context manager disabled spans return."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    A singleton (:data:`NULL`) shared by all callers; ``enabled`` is the
    one attribute instrumentation sites may branch on to skip building
    args for hot-loop counters.
    """

    __slots__ = ()
    enabled = False

    def span(self, name: str, cat: str = "run", **args) -> _NullSpan:
        return _NULL_SPAN

    def counter_add(self, name: str, value: float = 1) -> None:
        pass

    def gauge_set(self, name: str, value: float) -> None:
        pass

    def record_span(
        self, name: str, cat: str = "run", *, ts_ns: int, dur_ns: int, **args
    ) -> None:
        pass

    def absorb(self, events) -> None:
        pass

    def mark(self) -> int:
        return 0

    def counter_snapshot(self) -> dict:
        return {}

    def events(self, mark: int = 0, counters_base: dict | None = None) -> list:
        return []

    def events_since(self, mark: int) -> list:
        return []


NULL = NullRecorder()


class _Span:
    """One live span: records itself into the recorder on exit."""

    __slots__ = ("_rec", "name", "cat", "args", "t0_ns")

    def __init__(self, rec: "Recorder", name: str, cat: str, args: dict) -> None:
        self._rec = rec
        self.name = name
        self.cat = cat
        self.args = args
        self.t0_ns = 0

    def __enter__(self) -> "_Span":
        self.t0_ns = clock.monotonic_ns()
        return self

    def __exit__(self, *exc) -> bool:
        t1 = clock.monotonic_ns()
        self._rec._append(
            {
                "ev": "span",
                "name": self.name,
                "cat": self.cat,
                "ts_ns": self.t0_ns,
                "dur_ns": t1 - self.t0_ns,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "args": self.args,
            }
        )
        return False


class Recorder:
    """An enabled recorder: thread-safe span list + aggregated counters.

    Span events are plain dicts (the manifest/Chrome line format);
    counters and gauges aggregate into name->value maps and materialise
    as events only in :meth:`events` output.  ``mark()`` /
    ``events_since`` / ``counter_snapshot`` let a caller scope one
    run's events out of a longer-lived recorder (exact for spans; for
    counters the scope is a snapshot diff, so concurrent runs sharing
    one recorder fold their counter increments together — the engine's
    documented single-run-at-a-time profiling scope).
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}

    # -- recording -----------------------------------------------------

    def span(self, name: str, cat: str = "run", **args) -> _Span:
        return _Span(self, name, cat, args)

    def counter_add(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge_set(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def record_span(
        self, name: str, cat: str = "run", *, ts_ns: int, dur_ns: int, **args
    ) -> None:
        """Record a span from timestamps taken earlier.

        The post-hoc form of :meth:`span`, for intervals whose bounds a
        caller measured itself — e.g. the pipelined engine's logical
        stage spans, which overlap each other and so cannot be nested
        context managers.  ``ts_ns``/``dur_ns`` must come from the same
        monotonic clock spans use (:func:`repro.telemetry.clock.monotonic_ns`).
        """
        self._append(
            {
                "ev": "span",
                "name": name,
                "cat": cat,
                "ts_ns": ts_ns,
                "dur_ns": dur_ns,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "args": args,
            }
        )

    def _append(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)

    def absorb(self, events) -> None:
        """Fold a worker's shipped events in: spans append with their
        original pid/tid, counter/gauge records re-aggregate."""
        with self._lock:
            for ev in events:
                kind = ev.get("ev")
                if kind == "counter":
                    self._counters[ev["name"]] = (
                        self._counters.get(ev["name"], 0) + ev["value"]
                    )
                elif kind == "gauge":
                    self._gauges[ev["name"]] = ev["value"]
                else:
                    self._events.append(ev)

    # -- scoping / extraction ------------------------------------------

    def mark(self) -> int:
        """Current span-event count; pass to :meth:`events_since`."""
        with self._lock:
            return len(self._events)

    def counter_snapshot(self) -> dict:
        with self._lock:
            return dict(self._counters)

    def events_since(self, mark: int) -> list[dict]:
        """The span events recorded since ``mark`` (live references, so
        a parent may annotate args in place before exporting)."""
        with self._lock:
            return self._events[mark:]

    def events(self, mark: int = 0, counters_base: dict | None = None) -> list[dict]:
        """Spans since ``mark`` plus counter/gauge records.

        ``counters_base`` (a prior :meth:`counter_snapshot`) subtracts
        out increments from before the scope; zero deltas are dropped.
        """
        pid = os.getpid()
        with self._lock:
            out = list(self._events[mark:])
            for name in sorted(self._counters):
                value = self._counters[name]
                if counters_base is not None:
                    value -= counters_base.get(name, 0)
                if value:
                    out.append({"ev": "counter", "name": name, "value": value, "pid": pid})
            for name in sorted(self._gauges):
                out.append(
                    {"ev": "gauge", "name": name, "value": self._gauges[name], "pid": pid}
                )
        return out


# -- the process-wide recorder ----------------------------------------------

_RECORDER: NullRecorder | Recorder = NULL


def get_recorder() -> NullRecorder | Recorder:
    """The active recorder (the shared :data:`NULL` when disabled)."""
    return _RECORDER


def set_recorder(recorder: NullRecorder | Recorder | None):
    """Install ``recorder`` (``None`` = disable); returns the previous one."""
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder if recorder is not None else NULL
    return previous


def enable(recorder: Recorder | None = None) -> Recorder:
    """Install (and return) an enabled recorder."""
    recorder = recorder if recorder is not None else Recorder()
    set_recorder(recorder)
    return recorder


def disable() -> NullRecorder | Recorder:
    """Restore the no-op recorder; returns the one that was active."""
    return set_recorder(NULL)


@contextmanager
def recording(recorder: Recorder | None = None):
    """Temporarily enable recording; yields the active recorder."""
    recorder = recorder if recorder is not None else Recorder()
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


# -- module-level conveniences (resolve the recorder per call) ---------------


def span(name: str, cat: str = "run", **args):
    """A span context manager on the active recorder (no-op if disabled)."""
    return _RECORDER.span(name, cat=cat, **args)


def counter_add(name: str, value: float = 1) -> None:
    _RECORDER.counter_add(name, value)


def gauge_set(name: str, value: float) -> None:
    _RECORDER.gauge_set(name, value)


# -- cross-process propagation -----------------------------------------------


@dataclass
class ShardEnvelope:
    """A shard kernel's result plus the telemetry it recorded.

    What a process-pool worker ships back over the pipe when telemetry
    is enabled: the kernel's ordinary return value and the worker-side
    events (batched — one list per shard, not a stream).
    """

    value: Any
    events: list[dict]


def run_instrumented(fn, /, *args):
    """Run ``fn(*args)`` in a process-pool worker, capturing telemetry.

    Disabled recorder (the inherited default): calls straight through —
    same object flow as before telemetry existed.  Enabled: installs a
    fresh worker-local recorder for the duration (pool workers are
    reused across shards, so state must not leak between calls) and
    returns a :class:`ShardEnvelope` carrying the result plus the
    batched events for the parent to absorb.
    """
    if not _RECORDER.enabled:
        return fn(*args)
    local = Recorder()
    previous = set_recorder(local)
    try:
        value = fn(*args)
    finally:
        set_recorder(previous)
    return ShardEnvelope(value, local.events())


def unwrap_envelope(part):
    """Fold an envelope's events into the active recorder, pass the value.

    Non-envelope parts (serial/thread executors, or telemetry disabled)
    pass through untouched.
    """
    if isinstance(part, ShardEnvelope):
        _RECORDER.absorb(part.events)
        return part.value
    return part
