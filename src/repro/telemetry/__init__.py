"""`repro.telemetry`: determinism-safe observability for the engine.

The sharded engine runs multi-process, spill-to-disk workloads whose
hot path — probe grid, routing tables, shard collection, spill writes,
streaming merge, analysis ingest — was previously observable only
through post-hoc benchmarks.  This package instruments that path with

* **spans** — monotonic-clock intervals per stage and per shard,
  recorded in-process and shipped back from process-pool workers in
  batches alongside their results;
* **counters/gauges** — rows collected, probes sent, spill bytes,
  substrate LRU hits/misses/evictions, per-shard queue-wait vs exec
  time, peak RSS (``VmHWM``);
* **run manifests** — a ``telemetry.jsonl`` per spilled run, written
  into the run's spill directory next to its shards, exportable to the
  Chrome trace-event format (``chrome://tracing`` / Perfetto) and
  summarised by ``python -m repro.telemetry``.

Disabled (the default), the no-op recorder costs one global load per
instrumentation site.  Enabled, recording reads clocks only through the
audited helpers in :mod:`repro.telemetry.clock` (the one DET002
clock-read exemption in the tree) and touches no RNG or simulation
state, so the golden trace fingerprint is byte-identical with
telemetry fully on.

Quickstart::

    from repro import telemetry
    from repro.engine import EngineConfig, ShardedCollector
    from repro.testbed import dataset

    rec = telemetry.enable()                   # or REPRO_TELEMETRY=1
    col = ShardedCollector(
        EngineConfig(n_shards=4, spill_dir="runs")
    ).collect(dataset("ronnarrow"), 600.0, seed=1)
    print(telemetry.summarize(rec.events()))   # in-process view
    # per-run manifest: <col.spill_dir>/telemetry.jsonl
    #   python -m repro.telemetry summary <col.spill_dir>
    #   python -m repro.telemetry export <col.spill_dir> -o trace.json
"""

import os as _os

from . import clock
from .chrome import chrome_trace, export_chrome_trace, validate_chrome_trace
from .manifest import (
    MANIFEST_NAME,
    manifest_path,
    read_manifest,
    summarize,
    write_manifest,
)
from .recorder import (
    NullRecorder,
    Recorder,
    ShardEnvelope,
    counter_add,
    disable,
    enable,
    gauge_set,
    get_recorder,
    recording,
    run_instrumented,
    set_recorder,
    span,
    unwrap_envelope,
)

__all__ = [
    "clock",
    "Recorder",
    "NullRecorder",
    "ShardEnvelope",
    "get_recorder",
    "set_recorder",
    "enable",
    "disable",
    "recording",
    "span",
    "counter_add",
    "gauge_set",
    "run_instrumented",
    "unwrap_envelope",
    "MANIFEST_NAME",
    "manifest_path",
    "write_manifest",
    "read_manifest",
    "summarize",
    "chrome_trace",
    "export_chrome_trace",
    "validate_chrome_trace",
]

# REPRO_TELEMETRY=1 turns recording on at import time, so CLI runs
# (tools/golden.py, examples) get instrumented without code changes.
if _os.environ.get("REPRO_TELEMETRY", "") not in ("", "0"):
    enable()
