"""``python -m repro.telemetry``: summarize or export a run's manifest.

Usage::

    python -m repro.telemetry summary <run_dir | telemetry.jsonl>
    python -m repro.telemetry export  <run_dir | telemetry.jsonl> -o trace.json

``summary`` prints per-span aggregate timings plus counter/gauge totals;
``export`` writes a validated Chrome-trace JSON (open it in
``chrome://tracing`` or https://ui.perfetto.dev).  The positional
target is a spill run directory (``<spill_dir>/<run_slug>/``) or a
manifest file directly.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from .chrome import export_chrome_trace
from .manifest import manifest_path, read_manifest, summarize

__all__ = ["main"]


def _print_summary(header: dict, events: list[dict]) -> None:
    run = header.get("run", {})
    if run:
        print(
            f"run: dataset={run.get('dataset')!r} mode={run.get('mode')!r} "
            f"seed={run.get('seed')} hosts={run.get('hosts')} "
            f"executor={run.get('executor')} shards={run.get('n_shards')}"
        )
    summary = summarize(events)
    if summary["spans"]:
        print(f"\n{'span':34s} {'count':>6s} {'total s':>10s} {'mean s':>10s} {'max s':>10s}")
        for key in sorted(summary["spans"]):
            agg = summary["spans"][key]
            print(
                f"{key:34s} {agg['count']:6d} {agg['total_s']:10.4f} "
                f"{agg['mean_s']:10.4f} {agg['max_s']:10.4f}"
            )
    if summary["counters"]:
        print(f"\n{'counter':34s} {'value':>14s}")
        for name in sorted(summary["counters"]):
            print(f"{name:34s} {summary['counters'][name]:14,.0f}")
    if summary["gauges"]:
        print(f"\n{'gauge':34s} {'value':>14s}")
        for name in sorted(summary["gauges"]):
            print(f"{name:34s} {summary['gauges'][name]:14,.0f}")
    if summary["shards"]:
        print(f"\nshards observed: {summary['shards']}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.telemetry", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser("summary", help="print per-span/counter aggregates")
    p_summary.add_argument("target", type=Path, help="run dir or telemetry.jsonl")
    p_summary.add_argument(
        "--json", action="store_true", help="emit the summary as JSON instead of a table"
    )

    p_export = sub.add_parser("export", help="write a Chrome-trace JSON")
    p_export.add_argument("target", type=Path, help="run dir or telemetry.jsonl")
    p_export.add_argument(
        "-o", "--output", type=Path, required=True, help="Chrome trace output path"
    )
    args = parser.parse_args(argv)

    try:
        header, events = read_manifest(args.target)
    except FileNotFoundError:
        print(f"error: no manifest at {manifest_path(args.target)}")
        return 2
    except ValueError as exc:
        print(f"error: {exc}")
        return 2

    if args.command == "summary":
        if args.json:
            print(json.dumps(summarize(events), indent=2, sort_keys=True))
        else:
            _print_summary(header, events)
        return 0

    path = export_chrome_trace(events, args.output, header=header)
    n_spans = sum(1 for ev in events if ev.get("ev") == "span")
    print(f"wrote {path} ({n_spans} spans, {len(events) - n_spans} counter/gauge records)")
    return 0
