"""Per-run telemetry manifests: ``telemetry.jsonl`` in the spill run dir.

One manifest describes one engine run.  Line 1 is a header record
(``{"ev": "manifest", ...}``) carrying the schema version, the run
identity (dataset/mode/seed/horizon/hosts/methods) and the execution
shape (executor, shard count); every following line is one event dict
from :mod:`repro.telemetry.recorder` — span, counter or gauge.  JSONL
keeps the file appendable and streamable: a reader never needs the
whole run in memory, and a crashed run still yields a parseable prefix.

:func:`summarize` reduces an event list to per-span aggregate timings
plus the counter/gauge totals — what the CLI prints and the
``telemetry`` service op returns.
"""

from __future__ import annotations

import json
from pathlib import Path

from . import clock

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "manifest_path",
    "write_manifest",
    "read_manifest",
    "summarize",
]

MANIFEST_NAME = "telemetry.jsonl"
MANIFEST_VERSION = 1


def manifest_path(target: str | Path) -> Path:
    """The manifest file for ``target`` (a run dir, or the file itself)."""
    target = Path(target)
    if target.is_dir():
        return target / MANIFEST_NAME
    return target


def write_manifest(
    target: str | Path, events: list[dict], run: dict | None = None
) -> Path:
    """Write header + events to ``target`` (run dir or file path)."""
    path = manifest_path(target)
    header = {
        "ev": "manifest",
        "version": MANIFEST_VERSION,
        "created_unix_s": clock.wall_unix_s(),
        "run": run or {},
    }
    with open(path, "w") as fh:
        fh.write(json.dumps(header) + "\n")
        for ev in events:
            fh.write(json.dumps(ev) + "\n")
    return path


def read_manifest(target: str | Path) -> tuple[dict, list[dict]]:
    """Read a manifest back as ``(header, events)``.

    Tolerates a truncated final line (a run killed mid-write still
    yields its complete prefix); raises ``FileNotFoundError`` when
    neither the file nor ``<dir>/telemetry.jsonl`` exists and
    ``ValueError`` when the first line is not a manifest header.
    """
    path = manifest_path(target)
    header: dict | None = None
    events: list[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # truncated tail of an interrupted run
            if header is None:
                if record.get("ev") != "manifest":
                    raise ValueError(
                        f"{path} does not start with a manifest header "
                        f"(got ev={record.get('ev')!r})"
                    )
                header = record
            else:
                events.append(record)
    if header is None:
        raise ValueError(f"{path} is empty; not a telemetry manifest")
    return header, events


def summarize(events: list[dict]) -> dict:
    """Aggregate an event list into per-span timings + counter totals.

    Spans aggregate by ``cat:name`` into count / total / mean / max
    seconds; counters and gauges sum / keep-last by name.  ``shards``
    counts the distinct ``cat="shard"`` host ranges seen — a quick
    completeness check for sharded runs.
    """
    spans: dict[str, dict] = {}
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    shard_ranges: set[tuple] = set()
    for ev in events:
        kind = ev.get("ev")
        if kind == "span":
            key = f"{ev.get('cat', 'run')}:{ev['name']}"
            agg = spans.setdefault(
                key, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            dur_s = ev.get("dur_ns", 0) / 1e9
            agg["count"] += 1
            agg["total_s"] += dur_s
            agg["max_s"] = max(agg["max_s"], dur_s)
            if ev.get("cat") == "shard":
                args = ev.get("args", {})
                if "host_lo" in args:
                    shard_ranges.add((args["host_lo"], args.get("host_hi")))
        elif kind == "counter":
            counters[ev["name"]] = counters.get(ev["name"], 0) + ev["value"]
        elif kind == "gauge":
            gauges[ev["name"]] = ev["value"]
    for agg in spans.values():
        agg["mean_s"] = agg["total_s"] / agg["count"]
    return {
        "spans": spans,
        "counters": counters,
        "gauges": gauges,
        "shards": len(shard_ranges),
    }
