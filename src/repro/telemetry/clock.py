"""Audited clock reads — the only place ``repro`` touches a clock.

The determinism contract (DET002, see README) bans ambient entropy and
wall-clock reads from simulation code: results must be pure functions
of ``(seed, stream name)``.  Telemetry *measures* the machine rather
than feeding it, so its clock reads are legitimate — but they are
confined to this module so the static analyzer can keep the ban
enforceable everywhere else in ``src/`` (``src/repro/telemetry/`` is
the one per-path DET002 exemption in ``pyproject.toml``).  Instrumented
code never calls ``time.*`` directly; it calls these helpers (or, far
more commonly, records through :mod:`repro.telemetry.recorder`, which
calls them).

``CLOCK_MONOTONIC`` is machine-wide on Linux, so monotonic timestamps
taken in forked shard workers are directly comparable with the
parent's — which is how per-shard queue-wait (parent fan-out to worker
start) is computed without any cross-process clock handshake.
"""

from __future__ import annotations

import time

__all__ = ["monotonic_ns", "wall_unix_s", "peak_rss_bytes"]


def monotonic_ns() -> int:
    """Monotonic timestamp in nanoseconds (span begin/end, latencies)."""
    return time.monotonic_ns()


def wall_unix_s() -> float:
    """Wall-clock Unix time (manifest headers only, never span math)."""
    return time.time()


def peak_rss_bytes() -> int | None:
    """This process's lifetime peak resident set, in bytes.

    Read from ``VmHWM`` in ``/proc/self/status`` — unlike
    ``ru_maxrss``, it is per-process even right after a ``fork`` (a
    forked child's ``ru_maxrss`` inherits the parent's high-water
    mark).  Returns ``None`` where procfs is unavailable.
    """
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None
