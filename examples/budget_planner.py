#!/usr/bin/env python3
"""Bandwidth-budget allocation: the Figure 6 decision, for your flow.

Section 5's framing: an application has a bandwidth budget to spend on
loss avoidance - probing (reactive routing), duplication (mesh), or a
mix.  This example sweeps flow rates and budgets, prints the
recommended split for each, and renders the Figure 6 design-space map.
(The same map, parameterised by a run's *measured* cross-path CLP, is
available as `ExperimentResult.design_space()`.)

Usage:  python examples/budget_planner.py
"""

from __future__ import annotations

import numpy as np

from repro.models import DesignSpace, recommend_allocation

GLYPH = {"reactive": "R", "redundant": "D", "none": "."}


def allocation_table() -> None:
    print("Recommended overhead split (30-node overlay, 0.42% base loss)")
    print(f"{'flow (pps)':>10s} {'budget (pps)':>12s} {'probing':>8s} {'duplicate':>10s} {'predicted loss':>15s}")
    for flow in (2.0, 20.0, 200.0, 2000.0):
        for budget_mult in (0.5, 1.0, 3.0):
            budget = flow * budget_mult
            plan = recommend_allocation(flow_pps=flow, budget_pps=budget, n_nodes=30)
            probing = "yes" if plan.probe_interval_s is not None else "no"
            print(
                f"{flow:10.0f} {budget:12.0f} {probing:>8s} "
                f"{plan.duplicate_fraction * 100:9.0f}% "
                f"{plan.predicted_loss * 100:14.3f}%"
            )
    print()


def design_space_map() -> None:
    space = DesignSpace(
        n_nodes=30,
        link_capacity_pps=2000.0,
        best_path_improvement=0.75,
        cross_clp=0.60,  # the paper's measured cross-path CLP
    )
    print("Figure 6: cheaper scheme by (improvement ->, utilisation v)")
    print("  R = reactive, D = redundant, . = infeasible")
    improvements = np.linspace(0, 1, 26)
    for u in np.linspace(0, 1, 11):
        row = "".join(
            GLYPH[space.evaluate(float(i), float(u)).cheaper] for i in improvements
        )
        print(f"  {u:4.2f} {row}")
    print(
        "\nRedundant routing dies at the independence limit "
        f"(improvement {space.redundant_limit():.2f}: the ~60% shared-fate "
        "CLP); probing dies at the best-path limit; both die when the "
        "flow fills the link."
    )


if __name__ == "__main__":
    allocation_table()
    design_space_map()
