#!/usr/bin/env python3
"""Scenario zoo: generate workloads the paper never measured.

The paper's conclusions come from three datasets on one 30-host
testbed.  `repro.scenarios` turns the reproduction into a workload lab:
topology families (geo clusters, hub-and-spoke ISP hierarchies, scaled
meshes) compose with pathology families (flash crowds, regional
blackouts, lossy access cohorts, diurnal swings, congestion storms)
into registered datasets that run through the standard `Experiment`
machinery unchanged.

This script walks the standard catalogue at a small scale, runs every
family end-to-end on a shared `Runner`, and reports how the central
comparison — best-path vs. multi-path mesh routing — shifts regime by
regime (multi-path pays off under lossy edges; nothing helps inside a
correlated regional blackout).

Usage:  python examples/scenario_zoo.py [--minutes 10] [--seeds 1 2] [--workers 4]
"""

from __future__ import annotations

import argparse
import time

from repro import Runner
from repro.scenarios import (
    diurnal_isp,
    flash_crowd,
    lossy_edge,
    quiet_wide_area,
    regional_blackout,
    scenario_grid,
    stress_mesh,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--minutes", type=float, default=10.0, help="campaign length per run")
    parser.add_argument("--seeds", type=int, nargs="+", default=[1, 2])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--mesh-hosts", type=int, default=20,
                        help="host count for the stress-mesh family")
    args = parser.parse_args()

    zoo = [
        flash_crowd(n_hosts=10),
        regional_blackout(n_hosts=10),
        lossy_edge(spokes_per_hub=3),
        diurnal_isp(spokes_per_hub=2),
        stress_mesh(n_hosts=args.mesh_hosts),
        quiet_wide_area(n_hosts=8),
    ]
    print("Scenario catalogue (generated datasets):")
    for sc in zoo:
        hosts = sc.hosts()
        events = sc.events(args.minutes * 60.0)
        print(
            f"  {sc.name:26s} {len(hosts):3d} hosts, "
            f"{len({h.region for h in hosts})} regions, "
            f"{len(sc.pathologies)} pathologies, {len(events)} scheduled events"
        )
    print()

    specs = scenario_grid(
        zoo,
        duration_s=args.minutes * 60.0,
        seeds=tuple(args.seeds),
        label_fmt="{dataset}",
    )
    print(f"One generated spec, serialized:\n  {specs[0].to_json()}\n")

    runner = Runner(max_workers=args.workers)
    t0 = time.time()
    sweep = runner.sweep(specs)
    print(
        f"{len(sweep)} runs in {time.time() - t0:.1f}s on {args.workers} workers "
        f"({runner.cached_networks()} substrates built)\n"
    )

    print(f"{'scenario':26s} {'direct':>8s} {'mesh':>8s} {'saved':>7s}")
    for sc in zoo:
        sub = sweep.where(label=sc.name.lower())
        stats = sub[0].stats_by_method
        if "direct_rand" not in stats:
            direct, _ = sub.aggregate("direct", "totlp")
            print(f"{sc.name:26s} {direct:7.2f}% {'—':>8s} {'—':>7s}")
            continue
        baseline = "direct" if "direct" in stats else "direct_direct"
        direct, _ = sub.aggregate(baseline, "totlp")
        mesh, _ = sub.aggregate("direct_rand", "totlp")
        saved = 100.0 * (1.0 - mesh / direct) if direct > 0 else float("nan")
        print(f"{sc.name:26s} {direct:7.2f}% {mesh:7.2f}% {saved:6.0f}%")
    print(
        "\n('saved' = share of the baseline loss rate that 2-redundant "
        "mesh routing removes; totlp, mean over seeds)"
    )


if __name__ == "__main__":
    main()
