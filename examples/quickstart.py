#!/usr/bin/env python3
"""Quickstart: collect a scaled RON2003 dataset and print Table 5.

Runs the whole pipeline end to end in under a minute:

1. build the 30-host testbed on the calibrated synthetic Internet;
2. run the probing subsystem and both routing families for a
   time-compressed measurement campaign;
3. apply the paper's post-processing filters;
4. print the Table 5 statistics next to the published values.

Usage:  python examples/quickstart.py [hours] [seed]
"""

from __future__ import annotations

import sys

from repro import RON2003, apply_standard_filters, collect
from repro.analysis import method_stats_table, render_loss_table

PAPER = {
    "direct": (0.42, None, 0.42, None, 54.13),
    "lat": (0.43, None, 0.43, None, 48.01),
    "loss": (0.33, None, 0.33, None, 55.62),
    "direct_rand": (0.41, 2.66, 0.26, 62.47, 51.71),
    "lat_loss": (0.43, 1.95, 0.23, 55.08, 46.77),
    "direct_direct": (0.42, 0.43, 0.30, 72.15, 54.24),
    "dd_10ms": (0.41, 0.42, 0.27, 66.08, 54.28),
    "dd_20ms": (0.41, 0.41, 0.27, 65.28, 54.39),
}


def main() -> None:
    hours = float(sys.argv[1]) if len(sys.argv) > 1 else 3.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    print(f"Collecting a {hours:g}-hour RON2003-style dataset (seed {seed})...")
    result = collect(
        RON2003, duration_s=hours * 3600.0, seed=seed, include_events=False
    )
    trace = apply_standard_filters(result.trace)
    print(f"  {len(trace):,} probes between {len(trace.meta.host_names)} hosts\n")

    stats = method_stats_table(trace)
    print(render_loss_table(stats, "Table 5 (scaled collection vs paper)", paper=PAPER))

    by = {s.method: s for s in stats}
    saved = 100 * (1 - by["direct_rand"].totlp / by["direct"].totlp)
    print(
        f"\n2-redundant mesh routing removed {saved:.0f}% of losses "
        f"(paper: ~40%), at 2x traffic."
    )
    print(
        f"Conditional loss probability through a random intermediate: "
        f"{by['direct_rand'].clp:.0f}% (paper: 62%) - "
        "losses on 'independent' overlay paths are strongly correlated."
    )


if __name__ == "__main__":
    main()
