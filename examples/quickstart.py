#!/usr/bin/env python3
"""Quickstart: one `Experiment` call from scenario to Table 5.

Runs the whole pipeline end to end in under a minute through the
unified experiment API:

1. declare the scenario (`Experiment("ron2003", ...)`);
2. run it — the testbed is built, the probing subsystem and both
   routing families execute, and the paper's post-processing filters
   apply automatically;
3. read the Table 5 statistics off the result's lazy accessors, next
   to the published values.

Usage:  python examples/quickstart.py [hours] [seed]
"""

from __future__ import annotations

import sys

from repro import Experiment

PAPER = {
    "direct": (0.42, None, 0.42, None, 54.13),
    "lat": (0.43, None, 0.43, None, 48.01),
    "loss": (0.33, None, 0.33, None, 55.62),
    "direct_rand": (0.41, 2.66, 0.26, 62.47, 51.71),
    "lat_loss": (0.43, 1.95, 0.23, 55.08, 46.77),
    "direct_direct": (0.42, 0.43, 0.30, 72.15, 54.24),
    "dd_10ms": (0.41, 0.42, 0.27, 66.08, 54.28),
    "dd_20ms": (0.41, 0.41, 0.27, 65.28, 54.39),
}


def main() -> None:
    hours = float(sys.argv[1]) if len(sys.argv) > 1 else 3.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    print(f"Collecting a {hours:g}-hour RON2003-style dataset (seed {seed})...")
    result = Experiment(
        "ron2003", duration_s=hours * 3600.0, seeds=(seed,), include_events=False
    ).run()
    trace = result.trace
    print(f"  {len(trace):,} probes between {len(trace.meta.host_names)} hosts\n")

    print(result.loss_table("Table 5 (scaled collection vs paper)", paper=PAPER))

    by = result.stats_by_method
    saved = 100 * (1 - by["direct_rand"].totlp / by["direct"].totlp)
    print(
        f"\n2-redundant mesh routing removed {saved:.0f}% of losses "
        "(paper: ~40%), at 2x traffic."
    )
    print(
        "Conditional loss probability through a random intermediate: "
        f"{by['direct_rand'].clp:.0f}% (paper: 62%) - "
        "losses on 'independent' overlay paths are strongly correlated."
    )


if __name__ == "__main__":
    main()
