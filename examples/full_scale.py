#!/usr/bin/env python3
"""Full-scale collection: the paper's actual 14-day RON2003 campaign.

Everything in this repository runs time-compressed by default; this
script is the configuration for the real thing — 30 hosts, fourteen
days, the six probe groups, and the scheduled incidents — declared as
one `Experiment` and producing a trace on the order of the paper's
32.6M samples.  Expect roughly an hour of wall-clock time and ~10 GB
of working memory for the routing tables; pass a smaller ``--days`` to
scale down.

Usage:  python examples/full_scale.py [--days 14] [--seed 1] [--out trace.npz]
"""

from __future__ import annotations

import argparse
import time

from repro import Experiment, save_trace
from repro.netsim.units import DAY


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=14.0, help="campaign length")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=None, help="optional .npz trace path")
    args = parser.parse_args()

    print(
        f"Collecting {args.days:g} days of RON2003 "
        "(paper: 14 days, 32,602,776 samples)..."
    )
    t0 = time.time()
    result = Experiment(
        "ron2003",
        duration_s=args.days * DAY,
        seeds=(args.seed,),
        include_events=True,
    ).run()
    trace = result.trace
    print(f"  {len(trace):,} probes in {time.time() - t0:.0f}s")

    if args.out:
        path = save_trace(trace, args.out)
        print(f"  trace written to {path}")

    print()
    print(result.loss_table("Table 5 (full scale)"))


if __name__ == "__main__":
    main()
