#!/usr/bin/env python3
"""Outage drill: watch reactive routing dodge a failure, live.

Runs the *event-driven* RON overlay (the protocol of Section 3.1,
probe by probe) on a five-host subset, injects a total outage on one
path's transit segment mid-run, and prints the routing decision for the
affected pair every probing round — the moment the last-100-probes loss
estimate crosses the hysteresis margin, the overlay reroutes through an
intermediate, and data packets keep flowing.

This example deliberately sits *below* the `repro.api.Experiment`
front door: it drives the per-probe overlay protocol directly, which
the vectorised collection pipeline abstracts away.

Usage:  python examples/outage_drill.py
"""

from __future__ import annotations

import numpy as np

from repro.core.methods import METHODS
from repro.core.selector import DIRECT
from repro.netsim import Network, config_2003
from repro.netsim.episodes import EpisodeSet, Timeline
from repro.netsim.state import TimelineBank
from repro.testbed import hosts_2003
from repro.testbed.ron import Overlay

HORIZON = 2400.0
OUTAGE_START = 600.0
OUTAGE_LENGTH = 1500.0
SRC, DST = 0, 1


def build_network() -> Network:
    picks = ("MIT", "UCSD", "GBLX-CHI", "Intel", "NYU")
    by_name = {h.name: h for h in hosts_2003()}
    hosts = [by_name[n] for n in picks]
    net = Network.build(hosts, config_2003(), horizon=HORIZON, seed=7)

    # Inject a hard outage on the (MIT -> UCSD) transit segment; all
    # other segments keep their normal (mostly quiet) behaviour.
    topo = net.topology
    target = topo.registry.by_name(f"mid:{picks[SRC]}:{picks[DST]}").sid
    timelines = []
    for seg in topo.registry:
        if seg.sid == target:
            eps = EpisodeSet(
                np.array([OUTAGE_START]),
                np.array([OUTAGE_LENGTH]),
                np.array([0.999]),
            )
            timelines.append(Timeline.from_episodes(eps, HORIZON, 120.0))
        else:
            timelines.append(Timeline.quiet(HORIZON))
    net.state.outage = TimelineBank(timelines, HORIZON)
    return net


def main() -> None:
    net = build_network()
    hosts = [h.name for h in net.topology.hosts]
    overlay = Overlay(net, seed=7)
    overlay.start()

    print(f"Overlay of {len(hosts)} hosts; watching {hosts[SRC]} -> {hosts[DST]}")
    print(f"A transit outage hits that path at t={OUTAGE_START:.0f}s.\n")
    print(f"{'t(s)':>6s} {'loss est':>9s} {'route':>12s} {'data packet':>12s}")

    previous = None
    for t in range(0, int(HORIZON), 60):
        overlay.run_until(float(t))
        est = overlay.nodes[SRC].loss_estimate(DST)
        decision = overlay.route(SRC, DST, "loss")
        route = "direct" if decision.relay == DIRECT else f"via {hosts[decision.relay]}"
        outcome = overlay.send_data(SRC, DST, METHODS["loss"])
        data = "LOST" if outcome.lost else f"{outcome.latency_s * 1e3:.1f} ms"
        marker = ""
        if previous is not None and decision.relay != previous:
            marker = "   <- reroute"
        previous = decision.relay
        print(f"{t:6d} {est * 100:8.1f}% {route:>12s} {data:>12s}{marker}")

    print(
        "\nThe loss estimate climbs one probe at a time (the 100-probe "
        "window), crosses the switch margin within a few probe rounds, "
        "and the overlay forwards through an intermediate until the "
        "window forgets the outage - Section 3.1's behaviour, end to end."
    )


if __name__ == "__main__":
    main()
