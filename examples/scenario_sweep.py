#!/usr/bin/env python3
"""Scenario sweep: many datasets x many seeds through one `Runner`.

The unified experiment API separates *scenario specification* from
*execution*: each scenario is a frozen `ExperimentSpec` (serializable —
this script prints one as JSON), and the `Runner` executes the whole
batch, fanning independent runs over a thread pool and reusing a
prebuilt substrate wherever two runs share the same weather.

The sweep here re-measures the paper's central number — how much of
the direct path's loss 2-redundant mesh routing removes — across
seeds and datasets, reporting mean +/- std instead of a single draw.
It also registers a custom probing method (`loss_loss`) on the fly to
show the pluggable method catalogue.

Usage:  python examples/scenario_sweep.py [--hours 1.0] [--seeds 1 2 3] [--workers 4]
"""

from __future__ import annotations

import argparse
import time

from repro import ExperimentSpec, Method, Runner, RouteKind, register_method


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=1.0, help="campaign length per run")
    parser.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3])
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args()

    # A user-defined route-kind combination, registered into the shared
    # catalogue and then referenced by name like any paper method
    # (identical re-registration is a no-op, so this is re-runnable).
    register_method(Method("loss_loss", RouteKind.LOSS, RouteKind.LOSS))

    seeds = tuple(args.seeds)
    duration = args.hours * 3600.0
    specs = [
        ExperimentSpec(
            "ron2003",
            duration_s=duration,
            seeds=seeds,
            include_events=False,
            label="ron2003",
        ),
        ExperimentSpec(
            "ron2003",
            duration_s=duration,
            seeds=seeds,
            include_events=False,
            methods=("direct_rand", "loss_loss"),
            label="ron2003+loss_loss",
        ),
        ExperimentSpec("ronnarrow", duration_s=duration, seeds=seeds, label="ronnarrow"),
    ]
    print("One spec, serialized (ship it, store it, regenerate it):")
    print(f"  {specs[1].to_json()}\n")

    runner = Runner(max_workers=args.workers)
    t0 = time.time()
    sweep = runner.sweep(specs)
    print(
        f"{len(sweep)} runs in {time.time() - t0:.1f}s on {args.workers} workers "
        f"({runner.cached_networks()} substrates built)\n"
    )

    for spec in specs:
        sub = sweep.where(label=spec.label)
        print(f"== {spec.name} ({len(sub)} seeds) ==")
        print(sub.summary_table("totlp"))
        mesh = sub.aggregate("direct_rand", "totlp")
        base = sub.aggregate("direct", "totlp") if any(
            "direct" in r.stats_by_method for r in sub
        ) else (float("nan"), 0.0)
        if base[0] == base[0] and base[0] > 0:
            print(
                f"mesh routing removes {100 * (1 - mesh[0] / base[0]):.0f}% of "
                f"direct-path loss (mean over {len(sub)} seeds)"
            )
        print()


if __name__ == "__main__":
    main()
