#!/usr/bin/env python3
"""Interactive-application FEC planning (the Section 5.2 experiment).

A VoIP-like flow (50 packets/s) between two overlay hosts must decide
how to spend redundancy: duplicate over a second path (mesh routing),
protect with a Reed-Solomon group on one path, or spread that group in
time.  The paper's point: with ~70% conditional loss probability,
same-path FEC needs ~half a second of spreading — unacceptable for
interactive use — while multi-path redundancy pays no delay.

This script wires the Section 5.2 machinery by hand to compare four
plans side by side; to attach a single FEC configuration to a full
collection instead, pass `fec=repro.FecSpec(...)` to an `Experiment`
and read `result.fec_report()`.

Usage:  python examples/voip_fec_planner.py
"""

from __future__ import annotations

import numpy as np

from repro.fec import (
    DuplicationCode,
    ReedSolomonCode,
    simulate_group_delivery,
    transmission_plan,
)
from repro.netsim import Network, RngFactory, config_2003
from repro.testbed import hosts_2003

HORIZON = 6 * 3600.0
N_GROUPS = 40_000


def main() -> None:
    net = Network.build(hosts_2003(), config_2003(), horizon=HORIZON, seed=3)
    topo = net.topology
    rng = RngFactory(3).stream("voip")

    # pick a chronically lossy pair - the kind of path that needs help
    chronic = np.argwhere(topo.chronic_loss > 0.01)
    s, d = (int(chronic[0][0]), int(chronic[0][1])) if len(chronic) else (0, 1)
    names = (topo.hosts[s].name, topo.hosts[d].name)
    direct = net.paths.direct_pid(s, d)
    relay_host = next(r for r in range(topo.n_hosts) if r not in (s, d))
    relay = net.paths.relay_pid(s, relay_host, d)
    base_loss = net.path_mean_loss(direct) * 100

    print(f"Flow: {names[0]} -> {names[1]}, direct-path loss {base_loss:.2f}%")
    print(f"Relay for multi-path plans: {topo.hosts[relay_host].name}\n")

    rs = ReedSolomonCode(6, 5)  # the paper's 20%-overhead code
    dup = DuplicationCode(2)  # mesh routing's duplication
    times = rng.uniform(0, HORIZON * 0.9, N_GROUPS)

    plans = [
        ("RS(6,5) back-to-back, one path", rs, transmission_plan(6), [direct]),
        ("RS(6,5) spread 100 ms, one path", rs, transmission_plan(6, spacing_s=0.1), [direct]),
        ("RS(6,5) over two paths", rs, transmission_plan(6, n_paths=2), [direct, relay]),
        ("duplicate over two paths (mesh)", dup, transmission_plan(2, n_paths=2), [direct, relay]),
    ]

    print(f"{'plan':36s} {'recovery':>9s} {'residual loss':>14s} {'delay':>7s} {'overhead':>9s}")
    for name, code, plan, pids in plans:
        stats = simulate_group_delivery(net, code, plan, pids, times, rng=rng)
        print(
            f"{name:36s} {stats.group_recovery_rate * 100:8.2f}% "
            f"{stats.residual_loss_rate * 100:13.3f}% "
            f"{plan.recovery_delay_s * 1e3:5.0f}ms {code.overhead * 100:8.0f}%"
        )

    print(
        "\nReading: on one path, a back-to-back RS group dies with its "
        "burst; spreading rescues it but adds half a second the codec "
        "cannot hide (Section 5.2).  Sending the copies over two paths "
        "gets the protection without the delay - if you accept 2x "
        "overhead and a ~60% shared-fate floor."
    )


if __name__ == "__main__":
    main()
